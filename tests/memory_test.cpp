//===- tests/memory_test.cpp - memory/ substrate unit tests --------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "memory/AccessCounter.h"
#include "memory/AtomicRegister.h"
#include "memory/SchedHook.h"
#include "memory/TaggedValue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// AtomicRegister semantics
//===----------------------------------------------------------------------===

TEST(AtomicRegisterTest, ReadWriteRoundTrip) {
  AtomicRegister<std::uint64_t> Reg(5);
  EXPECT_EQ(Reg.read(), 5u);
  Reg.write(9);
  EXPECT_EQ(Reg.read(), 9u);
}

TEST(AtomicRegisterTest, CasSucceedsOnMatch) {
  AtomicRegister<std::uint32_t> Reg(1);
  EXPECT_TRUE(Reg.compareAndSwap(1, 2));
  EXPECT_EQ(Reg.read(), 2u);
}

TEST(AtomicRegisterTest, CasFailsOnMismatchAndLeavesValue) {
  AtomicRegister<std::uint32_t> Reg(1);
  EXPECT_FALSE(Reg.compareAndSwap(7, 2));
  EXPECT_EQ(Reg.read(), 1u);
}

TEST(AtomicRegisterTest, CasValueReportsWitness) {
  AtomicRegister<std::uint32_t> Reg(41);
  std::uint32_t Expected = 0;
  EXPECT_FALSE(Reg.compareAndSwapValue(Expected, 99));
  EXPECT_EQ(Expected, 41u); // The machine flavour returning the old value.
  EXPECT_TRUE(Reg.compareAndSwapValue(Expected, 99));
  EXPECT_EQ(Reg.read(), 99u);
}

TEST(AtomicRegisterTest, ExchangeReturnsPrevious) {
  AtomicRegister<std::uint8_t> Reg(0);
  EXPECT_EQ(Reg.exchange(1), 0u);
  EXPECT_EQ(Reg.exchange(0), 1u);
}

TEST(AtomicRegisterTest, FetchAddAccumulates) {
  AtomicRegister<std::uint32_t> Reg(10);
  EXPECT_EQ(Reg.fetchAdd(5), 10u);
  EXPECT_EQ(Reg.read(), 15u);
}

TEST(AtomicRegisterTest, Wide128CasWorks) {
  using Word = unsigned __int128;
  const Word A = (static_cast<Word>(1) << 100) | 7;
  const Word B = (static_cast<Word>(2) << 100) | 9;
  AtomicRegister<Word> Reg(A);
  EXPECT_FALSE(Reg.compareAndSwap(B, A));
  EXPECT_TRUE(Reg.compareAndSwap(A, B));
  EXPECT_TRUE(Reg.read() == B);
}

TEST(AtomicRegisterTest, ConcurrentCasIncrementsLoseNothing) {
  AtomicRegister<std::uint64_t> Counter(0);
  constexpr int Threads = 4;
  constexpr int PerThread = 5000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        std::uint64_t Seen = Counter.read();
        while (!Counter.compareAndSwapValue(Seen, Seen + 1)) {
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Counter.read(), static_cast<std::uint64_t>(Threads) * PerThread);
}

//===----------------------------------------------------------------------===
// Access accounting
//===----------------------------------------------------------------------===

TEST(AccessCounterTest, CountsEachKind) {
  AtomicRegister<std::uint32_t> Reg(0);
  const AccessCounts Counts = countAccesses([&] {
    (void)Reg.read();
    Reg.write(1);
    (void)Reg.compareAndSwap(1, 2); // Success.
    (void)Reg.compareAndSwap(1, 3); // Failure.
    (void)Reg.exchange(4);
    (void)Reg.fetchAdd(1);
  });
  EXPECT_EQ(Counts.Reads, 1u);
  EXPECT_EQ(Counts.Writes, 1u);
  EXPECT_EQ(Counts.CasAttempts, 2u);
  EXPECT_EQ(Counts.CasFailures, 1u);
  EXPECT_EQ(Counts.Rmw, 2u);
  EXPECT_EQ(Counts.total(), 6u);
}

TEST(AccessCounterTest, NoCountingWithoutScope) {
  AtomicRegister<std::uint32_t> Reg(0);
  AccessCounts Counts;
  {
    AccessCounterScope Scope(Counts);
    (void)Reg.read();
  }
  (void)Reg.read(); // Outside the scope: not counted.
  EXPECT_EQ(Counts.Reads, 1u);
}

TEST(AccessCounterTest, ScopesNestInnermostWins) {
  AtomicRegister<std::uint32_t> Reg(0);
  AccessCounts Outer, Inner;
  {
    AccessCounterScope OuterScope(Outer);
    (void)Reg.read();
    {
      AccessCounterScope InnerScope(Inner);
      (void)Reg.read();
      (void)Reg.read();
    }
    (void)Reg.read();
  }
  EXPECT_EQ(Outer.Reads, 2u);
  EXPECT_EQ(Inner.Reads, 2u);
}

TEST(AccessCounterTest, CountingIsPerThread) {
  AtomicRegister<std::uint32_t> Reg(0);
  AccessCounts Mine;
  AccessCounterScope Scope(Mine);
  std::thread Other([&] {
    for (int I = 0; I < 100; ++I)
      (void)Reg.read();
  });
  Other.join();
  EXPECT_EQ(Mine.Reads, 0u); // The other thread had no scope installed.
}

TEST(AccessCounterTest, DeltaOperator) {
  AccessCounts A, B;
  A.Reads = 10;
  A.CasAttempts = 4;
  B.Reads = 3;
  B.CasAttempts = 1;
  const AccessCounts D = A - B;
  EXPECT_EQ(D.Reads, 7u);
  EXPECT_EQ(D.CasAttempts, 3u);
}

//===----------------------------------------------------------------------===
// Reclamation channel: the uncounted access lane
//===----------------------------------------------------------------------===

//===----------------------------------------------------------------------===
// Sched hook plumbing
//===----------------------------------------------------------------------===

class CountingHook final : public SchedHook {
public:
  void beforeSharedAccess(AccessKind Kind) override {
    ++Calls;
    LastKind = Kind;
  }
  int Calls = 0;
  AccessKind LastKind = AccessKind::Read;
};

TEST(SchedHookTest, HookSeesEveryAccess) {
  AtomicRegister<std::uint32_t> Reg(0);
  CountingHook Hook;
  {
    SchedHookScope Scope(Hook);
    (void)Reg.read();
    Reg.write(1);
    (void)Reg.compareAndSwap(1, 2);
  }
  (void)Reg.read(); // Outside scope: not hooked.
  EXPECT_EQ(Hook.Calls, 3);
  EXPECT_EQ(Hook.LastKind, AccessKind::Cas);
}

//===----------------------------------------------------------------------===
// Reclamation channel: the uncounted access lane
//===----------------------------------------------------------------------===

// The reclamation channel (readReclaim / writeReclaim /
// compareAndSwapReclaim) is memory-system bookkeeping, not algorithm
// steps: it must be invisible to the access oracle so hazard
// publication and retire-list maintenance cannot perturb the paper's
// solo access bounds.
TEST(ReclaimChannelTest, InvisibleToTheAccessOracle) {
  AtomicRegister<std::uint32_t> Reg(7);
  const AccessCounts Counts = countAccesses([&] {
    EXPECT_EQ(Reg.readReclaim(), 7u);
    Reg.writeReclaim(8);
    EXPECT_TRUE(Reg.compareAndSwapReclaim(8, 9));
    EXPECT_FALSE(Reg.compareAndSwapReclaim(8, 10));
    (void)Reg.read(); // The one access that *should* count.
  });
  EXPECT_EQ(Counts.total(), 1u);
  EXPECT_EQ(Counts.Reads, 1u);
  EXPECT_EQ(Counts.CasAttempts, 0u);
}

// Fault injectors hang off the sched hook's preAccess path, so an
// uncounted tail is crash-atomic with the counted access before it: a
// crash can land before the linearizing C&S or after the whole tail,
// never in between. That property reduces to "reclaim ops never invoke
// the hook".
TEST(ReclaimChannelTest, InvisibleToSchedHooks) {
  AtomicRegister<std::uint32_t> Reg(0);
  CountingHook Hook;
  {
    SchedHookScope Scope(Hook);
    (void)Reg.readReclaim();
    Reg.writeReclaim(1);
    (void)Reg.compareAndSwapReclaim(1, 2);
  }
  EXPECT_EQ(Hook.Calls, 0);
}

TEST(ReclaimChannelTest, SemanticsMatchTheCountedOps) {
  AtomicRegister<std::uint64_t> Reg(5);
  EXPECT_EQ(Reg.readReclaim(), 5u);
  Reg.writeReclaim(6);
  EXPECT_EQ(Reg.peekForTesting(), 6u);
  EXPECT_FALSE(Reg.compareAndSwapReclaim(5, 7)); // stale expected
  EXPECT_EQ(Reg.peekForTesting(), 6u);
  EXPECT_TRUE(Reg.compareAndSwapReclaim(6, 7));
  EXPECT_EQ(Reg.read(), 7u); // visible to the counted lane: same cell
}

//===----------------------------------------------------------------------===
// Tagged codecs
//===----------------------------------------------------------------------===

TEST(TaggedValueTest, Compact64TopRoundTrip) {
  using Top = Compact64::Top;
  const TopFields<std::uint32_t> In{/*Index=*/123, /*Value=*/0xDEADBEE,
                                    /*Seq=*/456};
  const TopFields<std::uint32_t> Out = Top::unpack(Top::pack(In));
  EXPECT_EQ(Out, In);
}

TEST(TaggedValueTest, Compact64SlotRoundTrip) {
  using Slot = Compact64::Slot;
  const SlotFields<std::uint32_t> In{/*Value=*/0xABCDEF1, /*Seq=*/0xFFFF};
  const SlotFields<std::uint32_t> Out = Slot::unpack(Slot::pack(In));
  EXPECT_EQ(Out, In);
}

TEST(TaggedValueTest, Compact64SeqArithmeticWraps) {
  using Top = Compact64::Top;
  EXPECT_EQ(Top::seqAdd(0, -1), 0xFFFFu);
  EXPECT_EQ(Top::seqAdd(0xFFFF, 1), 0u);
  EXPECT_EQ(Top::seqAdd(5, 1), 6u);
}

TEST(TaggedValueTest, Compact64Constants) {
  using Top = Compact64::Top;
  EXPECT_EQ(Top::Bottom, 0xFFFFFFFFu);
  EXPECT_EQ(Top::MaxIndex, 0xFFFFu);
  EXPECT_EQ(Top::SeqMask, 0xFFFFu);
}

TEST(TaggedValueTest, Wide128TopRoundTrip) {
  using Top = Wide128::Top;
  const TopFields<std::uint64_t> In{/*Index=*/0xFFFFFFFF,
                                    /*Value=*/0x0123456789ABCDEFull,
                                    /*Seq=*/0x89ABCDEF};
  const TopFields<std::uint64_t> Out = Top::unpack(Top::pack(In));
  EXPECT_EQ(Out, In);
}

TEST(TaggedValueTest, Wide128Constants) {
  using Top = Wide128::Top;
  EXPECT_EQ(Top::Bottom, ~std::uint64_t{0});
  EXPECT_EQ(Top::MaxIndex, 0xFFFFFFFFu);
}

TEST(TaggedValueTest, DistinctFieldsDoNotAlias) {
  using Top = Compact64::Top;
  const auto W1 = Top::pack({1, 0, 0});
  const auto W2 = Top::pack({0, 1, 0});
  const auto W3 = Top::pack({0, 0, 1});
  EXPECT_NE(W1, W2);
  EXPECT_NE(W2, W3);
  EXPECT_NE(W1, W3);
}

} // namespace
} // namespace csobj
