//===- tests/runtime_test.cpp - Harness substrate tests ------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "runtime/Driver.h"
#include "runtime/SpinBarrier.h"
#include "runtime/Stats.h"
#include "runtime/TablePrinter.h"
#include "runtime/ThreadRegistry.h"
#include "runtime/Workload.h"

#include "baselines/LockedStack.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// LatencyHistogram
//===----------------------------------------------------------------------===

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.valueAtQuantile(0.5), 0u);
  EXPECT_EQ(H.mean(), 0.0);
  EXPECT_EQ(H.maxValue(), 0u);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram H;
  H.record(1000);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.maxValue(), 1000u);
  EXPECT_EQ(H.mean(), 1000.0);
  // Quantiles land in the bucket containing the value (within the
  // histogram's ~3% quantization).
  EXPECT_NEAR(static_cast<double>(H.valueAtQuantile(0.5)), 1000.0, 35.0);
  EXPECT_NEAR(static_cast<double>(H.valueAtQuantile(1.0)), 1000.0, 35.0);
}

TEST(HistogramTest, ZeroClampsToOne) {
  LatencyHistogram H;
  H.record(0);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_GE(H.minValue(), 1u);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  LatencyHistogram H;
  SplitMix64 Rng(17);
  for (int I = 0; I < 100000; ++I)
    H.record(Rng.below(1000000) + 1);
  std::uint64_t Prev = 0;
  for (double Q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::uint64_t V = H.valueAtQuantile(Q);
    EXPECT_GE(V, Prev);
    Prev = V;
  }
}

TEST(HistogramTest, UniformQuantilesApproximatelyCorrect) {
  LatencyHistogram H;
  SplitMix64 Rng(23);
  for (int I = 0; I < 200000; ++I)
    H.record(Rng.below(1000000) + 1);
  // Within the log-bucket quantization error (1/32 relative).
  EXPECT_NEAR(static_cast<double>(H.valueAtQuantile(0.5)), 500000.0,
              500000.0 * 0.08);
  EXPECT_NEAR(static_cast<double>(H.valueAtQuantile(0.9)), 900000.0,
              900000.0 * 0.08);
}

TEST(HistogramTest, MergeCombinesSamples) {
  LatencyHistogram A, B;
  A.record(10);
  A.record(20);
  B.record(1000000);
  A.merge(B);
  EXPECT_EQ(A.count(), 3u);
  EXPECT_EQ(A.maxValue(), 1000000u);
  EXPECT_NEAR(A.mean(), (10.0 + 20.0 + 1000000.0) / 3.0, 0.01);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram H;
  H.record(5);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.maxValue(), 0u);
  EXPECT_EQ(H.minValue(), 0u);
}

TEST(HistogramTest, MinMaxMeanRoundTripExactly) {
  // Regression for the upward-biased minimum: minValue() used to return
  // the upper edge of the first non-empty bucket, so any recorded value
  // that was not itself a bucket edge came back inflated (by up to one
  // bucket width — ~3% relative). Min is tracked exactly now, like Max,
  // so all three moments must reproduce the inputs verbatim.
  LatencyHistogram H;
  const std::uint64_t Values[] = {1000003, 2500001, 999999937};
  for (const std::uint64_t V : Values)
    H.record(V);
  EXPECT_EQ(H.minValue(), 1000003u)
      << "minimum must be the recorded value, not its bucket's upper edge";
  EXPECT_EQ(H.maxValue(), 999999937u);
  EXPECT_NEAR(H.mean(), (1000003.0 + 2500001.0 + 999999937.0) / 3.0, 0.01);

  // Merging an empty histogram must not drag the minimum to the empty
  // side's sentinel or to zero, in either direction.
  LatencyHistogram Empty;
  H.merge(Empty);
  EXPECT_EQ(H.minValue(), 1000003u);
  LatencyHistogram Target;
  Target.merge(H);
  EXPECT_EQ(Target.minValue(), 1000003u);
  EXPECT_EQ(Target.maxValue(), 999999937u);

  // A merge from a histogram with a smaller minimum must adopt it.
  LatencyHistogram Low;
  Low.record(17);
  Target.merge(Low);
  EXPECT_EQ(Target.minValue(), 17u);

  // And reset must restore the empty-histogram answers.
  Target.reset();
  EXPECT_EQ(Target.minValue(), 0u);
  Target.record(42);
  EXPECT_EQ(Target.minValue(), 42u);
  EXPECT_EQ(Target.maxValue(), 42u);
}

TEST(HistogramTest, SummarizePopulatesAllFields) {
  LatencyHistogram H;
  for (int I = 1; I <= 100; ++I)
    H.record(static_cast<std::uint64_t>(I) * 100);
  const LatencySummary S = summarize(H);
  EXPECT_EQ(S.Count, 100u);
  EXPECT_GT(S.MeanNs, 0.0);
  EXPECT_GT(S.P99Ns, S.P50Ns);
  EXPECT_GE(S.MaxNs, S.P99Ns);
}

//===----------------------------------------------------------------------===
// Jain fairness index
//===----------------------------------------------------------------------===

TEST(FairnessTest, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jainFairnessIndex({5, 5, 5, 5}), 1.0);
}

TEST(FairnessTest, MaximallyUnfair) {
  EXPECT_NEAR(jainFairnessIndex({100, 0, 0, 0}), 0.25, 1e-9);
}

TEST(FairnessTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(jainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(jainFairnessIndex({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(jainFairnessIndex({7}), 1.0);
}

TEST(FairnessTest, IntermediateValue) {
  const double J = jainFairnessIndex({10, 20});
  EXPECT_GT(J, 0.25);
  EXPECT_LT(J, 1.0);
  EXPECT_NEAR(J, 900.0 / (2 * 500.0), 1e-9);
}

//===----------------------------------------------------------------------===
// TablePrinter
//===----------------------------------------------------------------------===

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter Table({"name", "value"});
  Table.addRow({"a", "1"});
  Table.addRow({"longer-name", "22"});
  std::ostringstream OS;
  Table.print(OS);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  // All data lines share one width.
  std::istringstream Lines(Out);
  std::string Line;
  std::size_t Width = 0;
  while (std::getline(Lines, Line)) {
    if (Line.empty())
      continue;
    if (Width == 0)
      Width = Line.size();
    EXPECT_EQ(Line.size(), Width) << Out;
  }
}

TEST(TablePrinterTest, TitlePrinted) {
  TablePrinter Table({"x"});
  Table.setTitle("E1");
  std::ostringstream OS;
  Table.print(OS);
  EXPECT_NE(OS.str().find("== E1 =="), std::string::npos);
}

TEST(FormatTest, NsScaling) {
  EXPECT_EQ(formatNs(500), "500ns");
  EXPECT_EQ(formatNs(1500), "1.50us");
  EXPECT_EQ(formatNs(2500000), "2.50ms");
  EXPECT_EQ(formatNs(3e9), "3.00s");
}

TEST(FormatTest, RateScaling) {
  EXPECT_EQ(formatRate(500), "500 ops/s");
  EXPECT_EQ(formatRate(1500), "1.5 Kops/s");
  EXPECT_EQ(formatRate(2500000), "2.50 Mops/s");
}

TEST(FormatTest, DoubleDecimals) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(3.14159, 4), "3.1416");
}

//===----------------------------------------------------------------------===
// ThreadRegistry / SpinBarrier
//===----------------------------------------------------------------------===

TEST(ThreadRegistryTest, DenseIdsHandedOutOnce) {
  ThreadRegistry Registry(4);
  std::vector<std::uint32_t> Ids;
  for (int I = 0; I < 4; ++I)
    Ids.push_back(Registry.acquire());
  std::sort(Ids.begin(), Ids.end());
  EXPECT_EQ(Ids, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(Registry.activeCount(), 4u);
}

TEST(ThreadRegistryTest, ReleasedIdIsReused) {
  ThreadRegistry Registry(2);
  const auto A = Registry.acquire();
  (void)Registry.acquire();
  Registry.release(A);
  EXPECT_EQ(Registry.acquire(), A);
}

TEST(ThreadRegistryTest, ScopedIdReleasesOnDestruction) {
  ThreadRegistry Registry(1);
  {
    ScopedThreadId Id(Registry);
    EXPECT_EQ(Id.id(), 0u);
    EXPECT_EQ(Registry.activeCount(), 1u);
  }
  EXPECT_EQ(Registry.activeCount(), 0u);
}

TEST(ThreadRegistryTest, ConcurrentAcquireYieldsDistinctIds) {
  constexpr std::uint32_t N = 8;
  ThreadRegistry Registry(N);
  std::vector<std::uint32_t> Got(N);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < N; ++T)
    Workers.emplace_back([&, T] { Got[T] = Registry.acquire(); });
  for (auto &W : Workers)
    W.join();
  std::sort(Got.begin(), Got.end());
  for (std::uint32_t I = 0; I < N; ++I)
    EXPECT_EQ(Got[I], I);
}

TEST(SpinBarrierTest, ReleasesAllParties) {
  constexpr int N = 4;
  SpinBarrier Barrier(N);
  std::atomic<int> Before{0}, After{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T < N; ++T)
    Workers.emplace_back([&] {
      Before.fetch_add(1);
      Barrier.arriveAndWait();
      After.fetch_add(1);
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Before.load(), N);
  EXPECT_EQ(After.load(), N);
}

TEST(SpinBarrierTest, ReusableAcrossRounds) {
  constexpr int N = 3;
  SpinBarrier Barrier(N);
  std::atomic<int> Counter{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T < N; ++T)
    Workers.emplace_back([&] {
      for (int Round = 0; Round < 10; ++Round) {
        Barrier.arriveAndWait();
        Counter.fetch_add(1);
        Barrier.arriveAndWait();
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Counter.load(), N * 10);
}

//===----------------------------------------------------------------------===
// Workload driver
//===----------------------------------------------------------------------===

/// Adapter binding the generic driver to the locked stack.
struct LockedStackAdapter {
  explicit LockedStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}

  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t Value,
                  std::uint64_t &Retries) {
    (void)Retries;
    if (IsPush) {
      const PushResult R = Stack.push(Tid, Value);
      return R == PushResult::Done ? OpOutcome::Ok : OpOutcome::Full;
    }
    const auto R = Stack.pop(Tid);
    return R.isValue() ? OpOutcome::Ok : OpOutcome::Empty;
  }

  void prefillOne(std::uint32_t Value) { (void)Stack.push(0, Value); }

  LockedStack<> Stack;
};

TEST(DriverTest, RunsConfiguredOperationCount) {
  WorkloadConfig Config;
  Config.Threads = 3;
  Config.OpsPerThread = 500;
  Config.Capacity = 64;
  Config.PrefillPercent = 50;
  LockedStackAdapter Adapter(Config.Threads, Config.Capacity);
  const WorkloadReport Report = runClosedLoop(Adapter, Config);
  EXPECT_EQ(Report.PerThread.size(), 3u);
  EXPECT_EQ(Report.totalOps(), 3u * 500u);
  EXPECT_GT(Report.DurationSec, 0.0);
  EXPECT_GT(Report.throughputOpsPerSec(), 0.0);
  EXPECT_EQ(Report.totalAborts(), 0u);
  for (const ThreadReport &T : Report.PerThread)
    EXPECT_EQ(T.Latency.count(), 500u);
}

TEST(DriverTest, PrefillLeavesElementsToPop) {
  WorkloadConfig Config;
  Config.Threads = 1;
  Config.OpsPerThread = 100;
  Config.PushPercent = 0; // Pop-only: prefill must provide values.
  Config.Capacity = 1000;
  Config.PrefillPercent = 50; // 500 elements.
  LockedStackAdapter Adapter(1, Config.Capacity);
  const WorkloadReport Report = runClosedLoop(Adapter, Config);
  EXPECT_EQ(Report.PerThread[0].Pops, 100u);
  EXPECT_EQ(Report.PerThread[0].Empties, 0u);
}

TEST(DriverTest, PushOnlyWorkloadHitsFull) {
  WorkloadConfig Config;
  Config.Threads = 1;
  Config.OpsPerThread = 100;
  Config.PushPercent = 100;
  Config.Capacity = 10;
  Config.PrefillPercent = 0;
  LockedStackAdapter Adapter(1, Config.Capacity);
  const WorkloadReport Report = runClosedLoop(Adapter, Config);
  EXPECT_EQ(Report.PerThread[0].Pushes, 10u);
  EXPECT_EQ(Report.PerThread[0].Fulls, 90u);
}

TEST(DriverTest, FairnessComputedFromPerThreadCounts) {
  WorkloadReport Report;
  Report.PerThread.resize(2);
  Report.PerThread[0].Pushes = 100;
  Report.PerThread[1].Pushes = 100;
  EXPECT_DOUBLE_EQ(Report.fairness(), 1.0);
  Report.PerThread[1].Pushes = 0;
  EXPECT_NEAR(Report.fairness(), 0.5, 1e-9);
}

TEST(WorkloadTest, SpinThinkWaitsApproximately) {
  const auto Begin = std::chrono::steady_clock::now();
  spinThink(200000); // 200us.
  const auto ElapsedNs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Begin)
          .count();
  EXPECT_GE(ElapsedNs, 200000);
}

} // namespace
} // namespace csobj
