//===- tests/contention_manager_test.cpp - Manager layer tests -----------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contention-manager layer: concept conformance, the unit dynamics
/// of the yield and adaptive managers (including the adaptive manager's
/// use of the CasFailures instrumentation channel), and the equivalence
/// guarantee the sweep bench relies on — every manager crossed with the
/// Fast register policy still yields linearizable stacks and queues
/// under a mixed concurrent workload (managers may only pace retries,
/// never change outcomes).
///
//===----------------------------------------------------------------------===//

#include "support/ContentionManager.h"

#include "core/ContentionSensitiveQueue.h"
#include "core/ContentionSensitiveStack.h"
#include "core/NonBlockingQueue.h"
#include "core/NonBlockingStack.h"
#include "lincheck/Checker.h"
#include "lincheck/History.h"
#include "lincheck/Spec.h"
#include "locks/TasLock.h"
#include "memory/AccessCounter.h"
#include "memory/AtomicRegister.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// Concept conformance
//===----------------------------------------------------------------------===

static_assert(ContentionManager<NoBackoff>);
static_assert(ContentionManager<ExponentialBackoff>);
static_assert(ContentionManager<YieldBackoff>);
static_assert(ContentionManager<AdaptiveBackoff>);
static_assert(!ContentionManager<int>);

TEST(ContentionManagerTest, ManagerNames) {
  EXPECT_STREQ(NoBackoff::Name, "none");
  EXPECT_STREQ(ExponentialBackoff::Name, "exp");
  EXPECT_STREQ(YieldBackoff::Name, "yield");
  EXPECT_STREQ(AdaptiveBackoff::Name, "adaptive");
}

//===----------------------------------------------------------------------===
// YieldBackoff unit dynamics
//===----------------------------------------------------------------------===

TEST(ContentionManagerTest, YieldBackoffCountsAndResets) {
  YieldBackoff Mgr(/*SpinBudget=*/2);
  EXPECT_EQ(Mgr.abortsObserved(), 0u);
  Mgr.onAbort(); // Spin.
  Mgr.onAbort(); // Spin.
  Mgr.onAbort(); // Past the budget: yields, but must still return.
  EXPECT_EQ(Mgr.abortsObserved(), 3u);
  Mgr.onSuccess();
  EXPECT_EQ(Mgr.abortsObserved(), 0u);
}

//===----------------------------------------------------------------------===
// AdaptiveBackoff unit dynamics
//===----------------------------------------------------------------------===

TEST(ContentionManagerTest, AdaptiveWidensOneDoublingPerAbortUninstrumented) {
  // No access-counter scope: each abort is the single observable failure,
  // so the manager degrades to plain capped doubling.
  AdaptiveBackoff Mgr(/*MinWindow=*/2, /*MaxWindow=*/64);
  EXPECT_EQ(Mgr.window(), 2u);
  Mgr.onAbort();
  EXPECT_EQ(Mgr.window(), 4u);
  Mgr.onAbort();
  EXPECT_EQ(Mgr.window(), 8u);
  for (int I = 0; I < 10; ++I)
    Mgr.onAbort();
  EXPECT_EQ(Mgr.window(), 64u); // Capped.
}

TEST(ContentionManagerTest, AdaptiveWidensFromObservedCasFailures) {
  // Under instrumentation the manager reads the thread's CasFailures
  // delta: three failed C&S since the last abort → three doublings at
  // once, not one.
  AccessCounts Counts;
  AccessCounterScope Scope(Counts);
  AdaptiveBackoff Mgr(/*MinWindow=*/2, /*MaxWindow=*/4096);
  AtomicRegister<std::uint32_t, Instrumented> Reg(0);
  for (int I = 0; I < 3; ++I)
    EXPECT_FALSE(Reg.compareAndSwap(99, 1)); // Three counted failures.
  Mgr.onAbort();
  EXPECT_EQ(Mgr.window(), 2u << 3);
  // No further failures before the next abort → minimum one doubling.
  Mgr.onAbort();
  EXPECT_EQ(Mgr.window(), 2u << 4);
}

TEST(ContentionManagerTest, AdaptiveSuccessHalvesDownToFloor) {
  AdaptiveBackoff Mgr(/*MinWindow=*/2, /*MaxWindow=*/64);
  for (int I = 0; I < 4; ++I)
    Mgr.onAbort();
  EXPECT_EQ(Mgr.window(), 32u);
  Mgr.onSuccess();
  EXPECT_EQ(Mgr.window(), 16u);
  for (int I = 0; I < 10; ++I)
    Mgr.onSuccess();
  EXPECT_EQ(Mgr.window(), 2u); // Never below the floor.
}

TEST(ContentionManagerTest, AdaptiveDefaultSeedDivergesAcrossThreads) {
  // Same regression as BackoffTest.DefaultSeedDivergesAcrossThreads, for
  // the adaptive manager (it carries its own SplitMix64): two default-
  // seeded managers on different threads must not share a stream. Wide
  // fixed window, no aborts in between, so only the seed can differ.
  constexpr std::uint32_t Wide = 1u << 20;
  constexpr std::size_t Draws = 8;
  std::vector<std::uint64_t> A, B;
  std::thread T1([&] {
    AdaptiveBackoff Mgr(Wide, Wide);
    for (std::size_t I = 0; I < Draws; ++I)
      A.push_back(Mgr.stepDrawForTesting());
  });
  std::thread T2([&] {
    AdaptiveBackoff Mgr(Wide, Wide);
    for (std::size_t I = 0; I < Draws; ++I)
      B.push_back(Mgr.stepDrawForTesting());
  });
  T1.join();
  T2.join();
  EXPECT_NE(A, B);

  // And an explicit seed restores determinism for directed tests.
  AdaptiveBackoff First(Wide, Wide, /*Seed=*/7);
  AdaptiveBackoff Second(Wide, Wide, /*Seed=*/7);
  for (std::size_t I = 0; I < Draws; ++I)
    EXPECT_EQ(First.stepDrawForTesting(), Second.stepDrawForTesting());
}

//===----------------------------------------------------------------------===
// Linearizability: Fast policy x every manager (mixed workload oracle)
//===----------------------------------------------------------------------===

/// Same harness as lincheck_test.cpp's stress section: rounds of random
/// concurrent operations, merged history checked against the sequential
/// spec.
template <typename MakeObjFn, typename ApplyFn, typename SpecFn>
void runAndCheck(std::uint32_t Threads, std::uint32_t OpsPerThread,
                 std::uint32_t Rounds, MakeObjFn MakeObject, ApplyFn Apply,
                 SpecFn MakeSpec) {
  for (std::uint32_t Round = 0; Round < Rounds; ++Round) {
    auto Object = MakeObject();
    std::vector<HistoryRecorder> Recorders;
    for (std::uint32_t T = 0; T < Threads; ++T)
      Recorders.emplace_back(T);
    SpinBarrier Barrier(Threads);
    std::vector<std::thread> Workers;
    for (std::uint32_t T = 0; T < Threads; ++T)
      Workers.emplace_back([&, T] {
        SplitMix64 Rng(Round * 7919 + T);
        Barrier.arriveAndWait();
        for (std::uint32_t I = 0; I < OpsPerThread; ++I) {
          const bool IsPush = Rng.chance(1, 2);
          const auto V =
              static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1;
          Apply(*Object, T, IsPush, V, Recorders[T]);
        }
      });
    for (auto &W : Workers)
      W.join();
    const History H = mergeHistories(Recorders);
    ASSERT_TRUE(H.wellFormed());
    const CheckResult Result = checkLinearizable(H, MakeSpec());
    ASSERT_FALSE(Result.HitSearchCap) << "inconclusive check";
    ASSERT_TRUE(Result.Linearizable) << Result.FailureNote;
  }
}

void recordPush(HistoryRecorder &Rec, PushResult Res, std::uint32_t V,
                std::uint64_t T0, std::uint64_t T1) {
  if (Res != PushResult::Abort)
    Rec.recordPush(V, Res == PushResult::Full, T0, T1);
}

void recordPop(HistoryRecorder &Rec, const PopResult<std::uint32_t> &Res,
               std::uint64_t T0, std::uint64_t T1) {
  if (Res.isValue())
    Rec.recordPopValue(Res.value(), T0, T1);
  else if (Res.isEmpty())
    Rec.recordPopEmpty(T0, T1);
}

template <ContentionManager Manager> void stressFastNbStack() {
  using Stack = NonBlockingStack<Compact64, Manager, Fast>;
  runAndCheck(
      3, 6, 25, [] { return std::make_unique<Stack>(4); },
      [](Stack &S, std::uint32_t, bool IsPush, std::uint32_t V,
         HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, S.push(V), V, T0, HistoryRecorder::now());
        else
          recordPop(Rec, S.pop(), T0, HistoryRecorder::now());
      },
      [] { return BoundedStackSpec(4); });
}

template <ContentionManager Manager> void stressFastCsStack() {
  using Stack =
      ContentionSensitiveStack<Compact64, TasLockT<Fast>, Manager, Fast>;
  runAndCheck(
      3, 6, 25, [] { return std::make_unique<Stack>(3, 4); },
      [](Stack &S, std::uint32_t Tid, bool IsPush, std::uint32_t V,
         HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, S.push(Tid, V), V, T0, HistoryRecorder::now());
        else
          recordPop(Rec, S.pop(Tid), T0, HistoryRecorder::now());
      },
      [] { return BoundedStackSpec(4); });
}

template <ContentionManager Manager> void stressFastNbQueue() {
  using Queue = NonBlockingQueue<Compact64, Manager, Fast>;
  runAndCheck(
      3, 6, 25, [] { return std::make_unique<Queue>(4); },
      [](Queue &Q, std::uint32_t, bool IsPush, std::uint32_t V,
         HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Q.enqueue(V), V, T0, HistoryRecorder::now());
        else
          recordPop(Rec, Q.dequeue(), T0, HistoryRecorder::now());
      },
      [] { return BoundedQueueSpec(4); });
}

TEST(FastPolicyLincheck, NbStackNoBackoff) { stressFastNbStack<NoBackoff>(); }
TEST(FastPolicyLincheck, NbStackExponential) {
  stressFastNbStack<ExponentialBackoff>();
}
TEST(FastPolicyLincheck, NbStackYield) { stressFastNbStack<YieldBackoff>(); }
TEST(FastPolicyLincheck, NbStackAdaptive) {
  stressFastNbStack<AdaptiveBackoff>();
}

TEST(FastPolicyLincheck, CsStackNoBackoff) { stressFastCsStack<NoBackoff>(); }
TEST(FastPolicyLincheck, CsStackExponential) {
  stressFastCsStack<ExponentialBackoff>();
}
TEST(FastPolicyLincheck, CsStackYield) { stressFastCsStack<YieldBackoff>(); }
TEST(FastPolicyLincheck, CsStackAdaptive) {
  stressFastCsStack<AdaptiveBackoff>();
}

TEST(FastPolicyLincheck, NbQueueNoBackoff) { stressFastNbQueue<NoBackoff>(); }
TEST(FastPolicyLincheck, NbQueueYield) { stressFastNbQueue<YieldBackoff>(); }
TEST(FastPolicyLincheck, NbQueueAdaptive) {
  stressFastNbQueue<AdaptiveBackoff>();
}

TEST(FastPolicyLincheck, CsQueueAdaptive) {
  using Queue =
      ContentionSensitiveQueue<Compact64, TasLockT<Fast>, AdaptiveBackoff,
                               Fast>;
  runAndCheck(
      3, 6, 25, [] { return std::make_unique<Queue>(3, 4); },
      [](Queue &Q, std::uint32_t Tid, bool IsPush, std::uint32_t V,
         HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Q.enqueue(Tid, V), V, T0, HistoryRecorder::now());
        else
          recordPop(Rec, Q.dequeue(Tid), T0, HistoryRecorder::now());
      },
      [] { return BoundedQueueSpec(4); });
}

//===----------------------------------------------------------------------===
// Managers inside the Figure 3 protected retry terminate
//===----------------------------------------------------------------------===

TEST(ContentionManagerTest, CsStackUnderLoadWithEveryManagerCompletes) {
  // Hammer the strong operations from several threads; every operation
  // must complete (starvation-freedom is unaffected by retry pacing).
  const std::uint32_t Threads = 4;
  const std::uint32_t Ops = 400;
  ContentionSensitiveStack<Compact64, TasLockT<Instrumented>,
                           AdaptiveBackoff, Instrumented>
      Stack(Threads, 16);
  SpinBarrier Barrier(Threads);
  std::vector<std::uint64_t> Completed(Threads, 0);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < Ops; ++I) {
        if ((I + T) % 2 == 0)
          (void)Stack.push(T, I + 1);
        else
          (void)Stack.pop(T);
        ++Completed[T];
      }
    });
  for (auto &W : Workers)
    W.join();
  for (std::uint32_t T = 0; T < Threads; ++T)
    EXPECT_EQ(Completed[T], Ops);
}

} // namespace
} // namespace csobj
