//===- tests/batch_test.cpp - Group-operation (batch) seam tests ---------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
//
// The batch APIs (push_all / pop_all / drain / enqueue_all / add_all)
// promise three things, each checked here:
//
//  * spec equivalence — a batch of k linearizes as k contiguous ops in
//    index order, so any single-threaded mix of solo and batch calls
//    must replay exactly against the sequential model;
//  * prefix semantics — a bounded object stops a batch at its first
//    Full/Empty answer (partial fill), and a crash mid-batch leaves a
//    *prefix* of the batch in shared memory, never a gap;
//  * seam accounting — the contended remainder retires through ONE seam
//    acquisition booked as the Batched path with a group-size histogram
//    entry, and the conservation laws (ops == Σ paths, Batched ==
//    histogram element sum) survive arbitrary batch/solo interleaving.
//
// Solo batches must stay on the six-access fast path per element — the
// access-count cells at the bottom pin that down.
//
//===----------------------------------------------------------------------===//

#include "core/ContentionSensitiveCounter.h"
#include "core/ContentionSensitiveDeque.h"
#include "core/ContentionSensitiveQueue.h"
#include "core/ContentionSensitiveStack.h"
#include "faults/FaultInjector.h"
#include "memory/AccessCounter.h"
#include "memory/ChaosHook.h"
#include "perf/AdaptiveShardedStack.h"
#include "perf/CombiningObjects.h"
#include "perf/ShardedStack.h"
#include "runtime/SpinBarrier.h"
#include "sched/InterleaveScheduler.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// Spec equivalence: solo + batch mixes replay against the sequential model
//===----------------------------------------------------------------------===

TEST(BatchSpec, StackMixedSoloAndBatchMatchesModel) {
  ContentionSensitiveStack<> S(2, 32);
  std::vector<std::uint32_t> Model;
  SplitMix64 Rng(0xBA7C4ull);
  std::uint32_t NextV = 1;
  for (std::uint32_t Round = 0; Round < 400; ++Round) {
    switch (Rng.below(4)) {
    case 0: { // solo push
      const std::uint32_t V = NextV++;
      const PushResult Res = S.push(0, V);
      if (Model.size() < 32) {
        ASSERT_EQ(Res, PushResult::Done);
        Model.push_back(V);
      } else {
        ASSERT_EQ(Res, PushResult::Full);
      }
      break;
    }
    case 1: { // solo pop
      const PopResult<std::uint32_t> Res = S.pop(0);
      if (Model.empty()) {
        ASSERT_TRUE(Res.isEmpty());
      } else {
        ASSERT_TRUE(Res.isValue());
        ASSERT_EQ(Res.value(), Model.back());
        Model.pop_back();
      }
      break;
    }
    case 2: { // batch push
      const std::size_t K = Rng.below(9) + 1;
      std::vector<std::uint32_t> Vs(K);
      for (auto &V : Vs)
        V = NextV++;
      const std::size_t Pushed = S.push_all(0, Vs.data(), K);
      const std::size_t Room = 32 - Model.size();
      ASSERT_EQ(Pushed, std::min(K, Room));
      Model.insert(Model.end(), Vs.begin(), Vs.begin() + Pushed);
      break;
    }
    default: { // batch pop
      const std::size_t K = Rng.below(9) + 1;
      std::vector<std::uint32_t> Out(K);
      const std::size_t Got = S.pop_all(0, Out.data(), K);
      ASSERT_EQ(Got, std::min(K, Model.size()));
      for (std::size_t I = 0; I < Got; ++I) {
        ASSERT_EQ(Out[I], Model.back()) << "LIFO order within the batch";
        Model.pop_back();
      }
      break;
    }
    }
  }
  ASSERT_EQ(S.sizeForTesting(), Model.size());
  EXPECT_TRUE(S.pathSnapshot().conserves());
}

TEST(BatchSpec, QueueMixedSoloAndBatchMatchesModel) {
  ContentionSensitiveQueue<> Q(2, 16);
  std::deque<std::uint32_t> Model;
  SplitMix64 Rng(0xBA7C5ull);
  std::uint32_t NextV = 1;
  for (std::uint32_t Round = 0; Round < 400; ++Round) {
    switch (Rng.below(4)) {
    case 0: {
      const std::uint32_t V = NextV++;
      const PushResult Res = Q.enqueue(0, V);
      if (Model.size() < 16) {
        ASSERT_EQ(Res, PushResult::Done);
        Model.push_back(V);
      } else {
        ASSERT_EQ(Res, PushResult::Full);
      }
      break;
    }
    case 1: {
      const PopResult<std::uint32_t> Res = Q.dequeue(0);
      if (Model.empty()) {
        ASSERT_TRUE(Res.isEmpty());
      } else {
        ASSERT_TRUE(Res.isValue());
        ASSERT_EQ(Res.value(), Model.front());
        Model.pop_front();
      }
      break;
    }
    case 2: {
      const std::size_t K = Rng.below(7) + 1;
      std::vector<std::uint32_t> Vs(K);
      for (auto &V : Vs)
        V = NextV++;
      const std::size_t Added = Q.enqueue_all(0, Vs.data(), K);
      ASSERT_EQ(Added, std::min(K, 16 - Model.size()));
      Model.insert(Model.end(), Vs.begin(), Vs.begin() + Added);
      break;
    }
    default: {
      const std::size_t K = Rng.below(7) + 1;
      std::vector<std::uint32_t> Out(K);
      const std::size_t Got = Q.dequeue_all(0, Out.data(), K);
      ASSERT_EQ(Got, std::min(K, Model.size()));
      for (std::size_t I = 0; I < Got; ++I) {
        ASSERT_EQ(Out[I], Model.front()) << "FIFO order within the batch";
        Model.pop_front();
      }
      break;
    }
    }
  }
  ASSERT_EQ(Q.sizeForTesting(), Model.size());
  EXPECT_TRUE(Q.pathSnapshot().conserves());
}

TEST(BatchSpec, DequeRightEndMixedSoloAndBatchMatchesModel) {
  // All capacity on the right end: push_all/pop_all work that end.
  ContentionSensitiveDeque<> D(2, 32, /*InitialLeftSlots=*/0);
  std::vector<std::uint32_t> Model;
  SplitMix64 Rng(0xBA7C6ull);
  std::uint32_t NextV = 1;
  for (std::uint32_t Round = 0; Round < 300; ++Round) {
    switch (Rng.below(4)) {
    case 0: {
      const std::uint32_t V = NextV++;
      const PushResult Res = D.pushRight(0, V);
      if (Model.size() < 32) {
        ASSERT_EQ(Res, PushResult::Done);
        Model.push_back(V);
      } else {
        ASSERT_EQ(Res, PushResult::Full);
      }
      break;
    }
    case 1: {
      const PopResult<std::uint32_t> Res = D.popRight(0);
      if (Model.empty()) {
        ASSERT_TRUE(Res.isEmpty());
      } else {
        ASSERT_TRUE(Res.isValue());
        ASSERT_EQ(Res.value(), Model.back());
        Model.pop_back();
      }
      break;
    }
    case 2: {
      const std::size_t K = Rng.below(7) + 1;
      std::vector<std::uint32_t> Vs(K);
      for (auto &V : Vs)
        V = NextV++;
      const std::size_t Pushed = D.push_all(0, Vs.data(), K);
      ASSERT_EQ(Pushed, std::min(K, 32 - Model.size()));
      Model.insert(Model.end(), Vs.begin(), Vs.begin() + Pushed);
      break;
    }
    default: {
      const std::size_t K = Rng.below(7) + 1;
      std::vector<std::uint32_t> Out(K);
      const std::size_t Got = D.pop_all(0, Out.data(), K);
      ASSERT_EQ(Got, std::min(K, Model.size()));
      for (std::size_t I = 0; I < Got; ++I) {
        ASSERT_EQ(Out[I], Model.back());
        Model.pop_back();
      }
      break;
    }
    }
  }
  ASSERT_EQ(D.sizeForTesting(), Model.size());
  EXPECT_TRUE(D.pathSnapshot().conserves());
}

TEST(BatchSpec, CounterBatchReturnsRunningPostAddValues) {
  ContentionSensitiveCounter<> C(2);
  std::uint64_t Model = 0;
  SplitMix64 Rng(0xBA7C7ull);
  for (std::uint32_t Round = 0; Round < 200; ++Round) {
    if (Rng.chance(1, 2)) {
      const std::uint64_t Delta = Rng.below(100) + 1;
      Model += Delta;
      ASSERT_EQ(C.add(0, Delta), Model);
    } else {
      const std::size_t K = Rng.below(8) + 1;
      std::vector<std::uint64_t> Deltas(K), NewValues(K);
      for (auto &Delta : Deltas)
        Delta = Rng.below(100) + 1;
      ASSERT_EQ(C.add_all(0, Deltas.data(), K, NewValues.data()), K);
      for (std::size_t I = 0; I < K; ++I) {
        Model += Deltas[I];
        ASSERT_EQ(NewValues[I], Model)
            << "post-add values must run in index order";
      }
    }
  }
  ASSERT_EQ(C.valueForTesting(), Model);
  EXPECT_TRUE(C.pathSnapshot().conserves());
}

//===----------------------------------------------------------------------===
// Prefix semantics at the boundary: partial fill, never a gap
//===----------------------------------------------------------------------===

TEST(BatchBoundary, BoundedStackAcceptsExactlyThePrefix) {
  ContentionSensitiveStack<> S(2, 4);
  const std::uint32_t Vs[6] = {10, 20, 30, 40, 50, 60};
  EXPECT_EQ(S.push_all(0, Vs, 6), 4u) << "capacity 4: the suffix is rejected";
  EXPECT_EQ(S.sizeForTesting(), 4u);
  std::uint32_t Out[6] = {};
  EXPECT_EQ(S.pop_all(0, Out, 6), 4u);
  EXPECT_EQ(Out[0], 40u);
  EXPECT_EQ(Out[1], 30u);
  EXPECT_EQ(Out[2], 20u);
  EXPECT_EQ(Out[3], 10u);
  EXPECT_TRUE(S.pathSnapshot().conserves());
}

TEST(BatchBoundary, BoundedQueueAcceptsExactlyThePrefix) {
  ContentionSensitiveQueue<> Q(2, 4);
  const std::uint32_t Vs[6] = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(Q.enqueue_all(0, Vs, 6), 4u);
  std::uint32_t Out[6] = {};
  EXPECT_EQ(Q.drain(0, Out, 6), 4u);
  for (std::uint32_t I = 0; I < 4; ++I)
    EXPECT_EQ(Out[I], Vs[I]) << "FIFO prefix";
  EXPECT_TRUE(Q.pathSnapshot().conserves());
}

TEST(BatchBoundary, DrainOnEmptyReturnsZero) {
  ContentionSensitiveStack<> S(2, 4);
  std::uint32_t Out[4] = {};
  EXPECT_EQ(S.drain(0, Out, 4), 0u);
  CombiningStack<> C(2, 4);
  EXPECT_EQ(C.drain(0, Out, 4), 0u);
}

//===----------------------------------------------------------------------===
// Crash mid-batch: shared memory holds a prefix of the batch
//===----------------------------------------------------------------------===

/// Sweep a crash point over every shared access of a solo push_all(4):
/// whatever lands in the stack must be Vs[0..m) for some m — elements
/// are applied in index order, so no gap and no reordering survives.
TEST(BatchCrash, SoloCrashSweepLeavesIndexOrderPrefix) {
  const std::uint32_t Vs[4] = {11, 22, 33, 44};
  for (std::uint64_t K = 0; K < 30; ++K) {
    ContentionSensitiveStack<> S(2, 8);
    FaultClock Clock;
    FaultInjector Injector(FaultPlan::crashAt(0, K), 0, Clock);
    bool Crashed = false;
    std::size_t Pushed = 0;
    {
      SchedHookScope Scope(Injector);
      try {
        Pushed = S.push_all(0, Vs, 4);
      } catch (const ProcessCrash &) {
        Crashed = true;
      }
    }
    // Drain directly through the weak object (the crashed "process" may
    // still hold the lock; the weak ops do not need it).
    std::vector<std::uint32_t> Drained;
    while (true) {
      const PopResult<std::uint32_t> Res = S.abortable().weakPop();
      ASSERT_FALSE(Res.isAbort()) << "solo weak pop cannot abort";
      if (Res.isEmpty())
        break;
      Drained.push_back(Res.value());
    }
    // LIFO drain of a prefix push: reversed Vs[0..m).
    const std::size_t M = Drained.size();
    ASSERT_LE(M, 4u);
    for (std::size_t I = 0; I < M; ++I)
      ASSERT_EQ(Drained[I], Vs[M - 1 - I])
          << "crash at access " << K << " left a non-prefix state";
    if (!Crashed) {
      EXPECT_EQ(Pushed, 4u);
      EXPECT_EQ(M, 4u);
    }
  }
}

/// Crash the batcher *inside the lock-protected group phase*: T0's
/// element-0 shortcut is invalidated by T1's push, so T0 enters the
/// doorway/lock seam with the whole batch; a KillFlag crash at every
/// offset inside that tenure must leave T1's element at the bottom and
/// an index-order prefix of the batch above it.
TEST(BatchCrash, LockSeamCrashSweepLeavesPrefixOverForeignPush) {
  const std::uint32_t Vs[4] = {10, 20, 30, 40};
  for (std::uint32_t J = 1; J <= 40; ++J) {
    ContentionSensitiveStack<> S(2, 8);
    std::uint32_t Grants0 = 0;
    InterleaveScheduler Scheduler(2);
    Scheduler.run(
        {[&] { (void)S.push_all(0, Vs, 4); },
         [&] { (void)S.push(1, 99); }},
        [&](std::size_t, const std::vector<std::uint32_t> &Parked)
            -> std::uint32_t {
          const bool Has0 =
              std::find(Parked.begin(), Parked.end(), 0u) != Parked.end();
          const bool Has1 =
              std::find(Parked.begin(), Parked.end(), 1u) != Parked.end();
          // T0: CONTENTION read + 4 weak-push accesses of element 0,
          // parking just before its TOP C&S...
          if (Grants0 < 5 && Has0) {
            ++Grants0;
            return 0;
          }
          // ...then T1 pushes 99 to completion...
          if (Has1)
            return 1;
          // ...then T0 aborts into the group seam; kill it J accesses in.
          if (Has0) {
            if (++Grants0 == 5 + J)
              return 0 | InterleaveScheduler::KillFlag;
            return 0;
          }
          return Parked.front();
        });
    std::vector<std::uint32_t> Drained;
    while (true) {
      const PopResult<std::uint32_t> Res = S.abortable().weakPop();
      ASSERT_FALSE(Res.isAbort());
      if (Res.isEmpty())
        break;
      Drained.push_back(Res.value());
    }
    ASSERT_GE(Drained.size(), 1u) << "T1's completed push must survive";
    ASSERT_EQ(Drained.back(), 99u)
        << "foreign element must sit below the batch prefix";
    const std::size_t M = Drained.size() - 1;
    ASSERT_LE(M, 4u);
    for (std::size_t I = 0; I < M; ++I)
      ASSERT_EQ(Drained[I], Vs[M - 1 - I])
          << "kill offset " << J << " left a non-prefix state";
  }
}

//===----------------------------------------------------------------------===
// Seam accounting: one Batched group per contended remainder
//===----------------------------------------------------------------------===

/// Figure 3 seam: T1 invalidates T0's element-0 shortcut, so the whole
/// 4-op batch retires under ONE doorway/lock tenure booked as one
/// Batched group of 4 (not four Lock retirements).
TEST(BatchAccounting, LockSeamBooksOneGroupOfFour) {
  ContentionSensitiveStack<> S(2, 8);
  const std::uint32_t Vs[4] = {10, 20, 30, 40};
  std::size_t Pushed = 0;
  std::uint32_t Grants0 = 0;
  InterleaveScheduler Scheduler(2);
  Scheduler.run(
      {[&] { Pushed = S.push_all(0, Vs, 4); },
       [&] { (void)S.push(1, 99); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        const bool Has0 =
            std::find(Parked.begin(), Parked.end(), 0u) != Parked.end();
        const bool Has1 =
            std::find(Parked.begin(), Parked.end(), 1u) != Parked.end();
        if (Grants0 < 5 && Has0) {
          ++Grants0;
          return 0;
        }
        if (Has1)
          return 1;
        return Parked.front();
      });
  EXPECT_EQ(Pushed, 4u);
  EXPECT_EQ(S.sizeForTesting(), 5u);
  if constexpr (obs::MetricsEnabled) {
    const obs::PathSnapshot Snap = S.pathSnapshot();
    EXPECT_EQ(Snap.Ops, 5u) << "one solo op + four batch elements";
    EXPECT_EQ(Snap.path(obs::Path::Shortcut), 1u) << "T1's solo push";
    EXPECT_EQ(Snap.path(obs::Path::Batched), 4u);
    EXPECT_EQ(Snap.path(obs::Path::Lock), 0u)
        << "the group retires as Batched, not as four Lock ops";
    EXPECT_EQ(Snap.batchCount(), 1u) << "exactly one group booked";
    EXPECT_EQ(Snap.BatchOps, 4u);
    EXPECT_EQ(Snap.BatchMax, 4u);
    EXPECT_DOUBLE_EQ(Snap.batchMean(), 4.0);
    EXPECT_TRUE(Snap.conserves());
  }
  // The batch linearized after T1's push, contiguously: LIFO drain is
  // reversed batch order then 99.
  std::uint32_t Out[8] = {};
  ASSERT_EQ(S.drain(0, Out, 8), 5u);
  EXPECT_EQ(Out[0], 40u);
  EXPECT_EQ(Out[1], 30u);
  EXPECT_EQ(Out[2], 20u);
  EXPECT_EQ(Out[3], 10u);
  EXPECT_EQ(Out[4], 99u);
}

/// Flat-combining seam: the aborted batcher publishes ONE record carrying
/// all 4 remaining ops and (nobody else publishing) combines itself —
/// one combiner tenure, one batch record, four combined ops.
TEST(BatchAccounting, CombiningSeamPublishesOneRecordForTheGroup) {
  CombiningStack<> S(2, 8);
  const std::uint32_t Vs[4] = {10, 20, 30, 40};
  std::size_t Pushed = 0;
  std::uint32_t Grants0 = 0;
  InterleaveScheduler Scheduler(2);
  Scheduler.run(
      {[&] { Pushed = S.push_all(0, Vs, 4); },
       [&] { (void)S.push(1, 99); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        const bool Has0 =
            std::find(Parked.begin(), Parked.end(), 0u) != Parked.end();
        const bool Has1 =
            std::find(Parked.begin(), Parked.end(), 1u) != Parked.end();
        if (Grants0 < 5 && Has0) {
          ++Grants0;
          return 0;
        }
        if (Has1)
          return 1;
        return Parked.front();
      });
  EXPECT_EQ(Pushed, 4u);
  EXPECT_EQ(S.sizeForTesting(), 5u);
  EXPECT_EQ(S.skeleton().batchesForTesting(), 1u)
      << "one combiner tenure served the whole group";
  EXPECT_EQ(S.skeleton().combinedOpsForTesting(), 4u)
      << "all four group elements count as combined ops";
  EXPECT_FALSE(S.skeleton().contentionForTesting());
  if constexpr (obs::MetricsEnabled) {
    const obs::PathSnapshot Snap = S.pathSnapshot();
    EXPECT_EQ(Snap.Ops, 5u);
    EXPECT_EQ(Snap.path(obs::Path::Shortcut), 1u);
    EXPECT_EQ(Snap.path(obs::Path::Batched), 4u);
    EXPECT_EQ(Snap.path(obs::Path::Combined), 0u)
        << "a batched group books Batched, not per-op Combined";
    EXPECT_EQ(Snap.batchCount(), 1u);
    EXPECT_EQ(Snap.BatchOps, 4u);
    EXPECT_TRUE(Snap.conserves());
  }
}

/// Conservation stress: real threads mixing solo ops and batches under
/// chaos-injected preemption. The conservation laws — including the new
/// Batched == Σ histogram one — must hold at quiesce, and at least one
/// batch must have retired through the contended (Batched) seam.
template <typename StackT>
void runBatchSoloConservationStress(StackT &S, std::uint32_t Threads,
                                    std::uint32_t Rounds) {
  std::vector<std::int64_t> Balance(Threads, 0);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      ChaosHook Chaos(/*Seed=*/0xC0FFEEull + T, /*YieldPermille=*/300);
      SchedHookScope Scope(Chaos);
      Barrier.arriveAndWait();
      SplitMix64 Rng(0xD1CEull + T);
      std::uint32_t Buf[8];
      for (std::uint32_t I = 0; I < Rounds; ++I) {
        switch (Rng.below(4)) {
        case 0: {
          if (S.push(T, static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1) ==
              PushResult::Done)
            ++Balance[T];
          break;
        }
        case 1: {
          if (S.pop(T).isValue())
            --Balance[T];
          break;
        }
        case 2: {
          const std::size_t K = Rng.below(8) + 1;
          for (std::size_t V = 0; V < K; ++V)
            Buf[V] = static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1;
          Balance[T] +=
              static_cast<std::int64_t>(S.push_all(T, Buf, K));
          break;
        }
        default: {
          const std::size_t K = Rng.below(8) + 1;
          Balance[T] -=
              static_cast<std::int64_t>(S.pop_all(T, Buf, K));
          break;
        }
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  std::int64_t Net = 0;
  for (const std::int64_t B : Balance)
    Net += B;
  ASSERT_GE(Net, 0);
  EXPECT_EQ(S.sizeForTesting(), static_cast<std::uint32_t>(Net));
  const obs::PathSnapshot Snap = S.pathSnapshot();
  EXPECT_TRUE(Snap.conserves())
      << "ops=" << Snap.Ops << " pathTotal=" << Snap.pathTotal()
      << " batched=" << Snap.path(obs::Path::Batched)
      << " batchOps=" << Snap.BatchOps;
  EXPECT_EQ(Snap.path(obs::Path::Batched), Snap.BatchOps);
}

TEST(BatchAccounting, ConservationHoldsUnderMixedChaosFigureThree) {
  ContentionSensitiveStack<> S(4, 64);
  runBatchSoloConservationStress(S, 4, 400);
}

TEST(BatchAccounting, ConservationHoldsUnderMixedChaosCombining) {
  CombiningStack<> S(4, 64);
  runBatchSoloConservationStress(S, 4, 400);
}

//===----------------------------------------------------------------------===
// Sharded facade: batches fan out across shards, leftovers stay correct
//===----------------------------------------------------------------------===

TEST(BatchSharded, BatchFansOutAcrossShardsAndConserves) {
  ShardedStack<2> S(2, 8, /*SlotCount=*/1, /*SpinBudget=*/4);
  std::uint32_t Vs[10];
  for (std::uint32_t I = 0; I < 10; ++I)
    Vs[I] = I + 1;
  // Exactly-capacity batch fills both shards through their group seams.
  EXPECT_EQ(S.push_all(0, Vs, 8), 8u);
  EXPECT_EQ(S.shard(0).sizeForTesting(), 4u);
  EXPECT_EQ(S.shard(1).sizeForTesting(), 4u);
  std::uint32_t Out[10] = {};
  EXPECT_EQ(S.pop_all(0, Out, 10), 8u);
  std::vector<std::uint32_t> Got(Out, Out + 8);
  std::sort(Got.begin(), Got.end());
  EXPECT_EQ(Got, (std::vector<std::uint32_t>{1, 2, 3, 4, 5, 6, 7, 8}))
      << "bag conservation across the fan-out";
  EXPECT_EQ(S.sizeForTesting(), 0u);

  // Overflow batch: the first 8 land, the suffix is rejected via the
  // facade's certified all-full answer.
  EXPECT_EQ(S.push_all(0, Vs, 10), 8u);
  EXPECT_EQ(S.sizeForTesting(), 8u);
  EXPECT_EQ(S.drain(1, Out, 10), 8u);
  EXPECT_TRUE(S.pathSnapshot().conserves());
}

/// Regression for the dropped fallback accounting: a batch element that
/// lands through the facade's per-element boundary loop (here: an empty
/// bag, where pop_all's seam finds nothing but the fallback pop is fed
/// by a parked push through the balancer) must still be booked as group
/// work. Before the fix, the fallback suffix vanished from path_batched
/// and the group histogram while conservation still held — so this test
/// pins the group-accounting claim itself, not just conserves().
TEST(BatchSharded, FallbackSuffixIsBookedAsGroupWork) {
  ShardedStack<2> S(2, 4, /*SlotCount=*/1, /*SpinBudget=*/8);
  S.forceBalancerForTesting(true);
  std::optional<PushResult> Pushed;
  std::uint32_t Out[2] = {};
  std::size_t Got = 0;
  std::uint32_t GiverGrants = 0;
  InterleaveScheduler Scheduler(2);
  Scheduler.run(
      {[&] { Pushed = S.push(0, 42); }, [&] { Got = S.pop_all(1, Out, 1); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        const bool HasGiver =
            std::find(Parked.begin(), Parked.end(), 0u) != Parked.end();
        const bool HasTaker =
            std::find(Parked.begin(), Parked.end(), 1u) != Parked.end();
        // The giver parks 42 in the slot, then the batch's fallback pop
        // matches it — the element retires through the facade loop, not
        // a shard group seam.
        if (GiverGrants < 2 && HasGiver) {
          ++GiverGrants;
          return 0;
        }
        if (HasTaker)
          return 1;
        return Parked.front();
      });
  ASSERT_TRUE(Pushed.has_value());
  EXPECT_EQ(*Pushed, PushResult::Done);
  ASSERT_EQ(Got, 1u);
  EXPECT_EQ(Out[0], 42u);
  if constexpr (obs::MetricsEnabled) {
    const obs::PathSnapshot Snap = S.pathSnapshot();
    EXPECT_EQ(Snap.path(obs::Path::Batched), 1u)
        << "the fallback element must count as group work";
    EXPECT_EQ(Snap.batchCount(), 1u) << "one group histogram entry";
    EXPECT_EQ(Snap.BatchMax, 1u);
    EXPECT_TRUE(Snap.conserves());
  }
}

/// The same accounting seam on the adaptive facade (its push_all/pop_all
/// share the fix).
TEST(BatchSharded, AdaptiveFacadeBatchesFanOutAndConserve) {
  AdaptiveShardedStack<2> S(2, 8, /*InitialShards=*/1, /*SlotCount=*/1,
                            /*SpinBudget=*/4);
  std::uint32_t Vs[10];
  for (std::uint32_t I = 0; I < 10; ++I)
    Vs[I] = I + 1;
  // The batch overflows the one-shard mask: the seam fills shard 0, the
  // fallback pushes grow the mask and land the rest, and the suffix is
  // rejected only at the full mask.
  EXPECT_EQ(S.push_all(0, Vs, 10), 8u);
  EXPECT_EQ(S.activeShards(), 2u) << "a full batch must grow, not stop";
  EXPECT_EQ(S.sizeForTesting(), 8u);
  std::uint32_t Out[10] = {};
  EXPECT_EQ(S.pop_all(0, Out, 10), 8u);
  std::vector<std::uint32_t> Drained(Out, Out + 8);
  std::sort(Drained.begin(), Drained.end());
  EXPECT_EQ(Drained,
            (std::vector<std::uint32_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(S.sizeForTesting(), 0u);
  if constexpr (obs::MetricsEnabled) {
    const obs::PathSnapshot Snap = S.pathSnapshot();
    EXPECT_TRUE(Snap.conserves());
    EXPECT_GT(Snap.path(obs::Path::Batched), 0u);
  }
}

//===----------------------------------------------------------------------===
// Solo access counts: a solo batch is k fast paths, not one slow path
//===----------------------------------------------------------------------===

TEST(BatchAccessCounts, SoloStackBatchCostsSixPerElement) {
  ContentionSensitiveStack<> S(2, 8);
  const std::uint32_t Vs[4] = {1, 2, 3, 4};
  std::uint32_t Out[4] = {};
  EXPECT_EQ(countAccesses([&] { (void)S.push_all(0, Vs, 4); }).total(), 24u);
  EXPECT_EQ(countAccesses([&] { (void)S.pop_all(0, Out, 4); }).total(), 24u);
  // Empty pop_all stops at the first Empty answer: 1 CONTENTION read +
  // the 3-access empty weak pop.
  EXPECT_EQ(countAccesses([&] { (void)S.pop_all(0, Out, 4); }).total(), 4u);
}

TEST(BatchAccessCounts, SoloCombiningBatchCostsSixPerElement) {
  CombiningStack<> S(2, 8);
  const std::uint32_t Vs[4] = {1, 2, 3, 4};
  std::uint32_t Out[4] = {};
  EXPECT_EQ(countAccesses([&] { (void)S.push_all(0, Vs, 4); }).total(), 24u);
  EXPECT_EQ(countAccesses([&] { (void)S.pop_all(0, Out, 4); }).total(), 24u);
}

TEST(BatchAccessCounts, SoloQueueCounterShardedBatchesMatchSoloRates) {
  ContentionSensitiveQueue<> Q(2, 8);
  const std::uint32_t Vs[4] = {1, 2, 3, 4};
  std::uint32_t Out[4] = {};
  // Queue solo ops cost 7 accesses; a solo batch is 7 per element.
  EXPECT_EQ(countAccesses([&] { (void)Q.enqueue_all(0, Vs, 4); }).total(),
            28u);
  EXPECT_EQ(countAccesses([&] { (void)Q.dequeue_all(0, Out, 4); }).total(),
            28u);
  ContentionSensitiveCounter<> C(2);
  const std::uint64_t Deltas[4] = {1, 2, 3, 4};
  EXPECT_EQ(countAccesses([&] { (void)C.add_all(0, Deltas, 4); }).total(),
            12u)
      << "counter solo ops cost 3 accesses each";
  ShardedStack<2> Sh(2, 8);
  // The whole batch fits the home shard: six accesses per element.
  EXPECT_EQ(countAccesses([&] { (void)Sh.push_all(0, Vs, 4); }).total(),
            24u);
}

} // namespace
} // namespace csobj
