//===- tests/json_reporter_test.cpp - JSON emitter round-trip ------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
//
// Round-trip coverage for obs/JsonReporter.h: a small recursive-descent
// parser (below, test-only) consumes exactly the subset the emitter
// produces — an array of objects whose values are strings, numbers,
// booleans, null, or nested arrays/objects (the soak bench's window
// time-series) — and the tests assert that what went in through field()
// comes back out byte-identical after escaping, that NaN/Inf degrade to
// null rather than corrupting the document, that the full uint64 range
// survives (doubles would silently round above 2^53), that nesting
// round-trips without perturbing the flat layout, and that the
// path-breakdown schema (obs/MetricsJson.h) parses with its
// conservation law intact. Benchmark plots and the CI bench-smoke
// validator both stand on these properties.
//
//===----------------------------------------------------------------------===//

#include "obs/JsonReporter.h"
#include "obs/MetricsJson.h"
#include "obs/PathCounters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// Minimal JSON parser for the emitter's output subset
//===----------------------------------------------------------------------===

/// A parsed value. Scalars live in the variant: unsigned integers parse
/// as Uint (exact), anything with a '.', 'e', or '-' as Num, plus
/// Str/Bool/Null. Nested values (the soak bench's window time-series)
/// use the side containers: IsArr/Arr for arrays, IsObj/Obj for nested
/// objects — kept out of the variant so JsonValue stays a complete type
/// inside its own alternatives.
struct JsonValue {
  std::variant<std::monostate, std::string, std::uint64_t, double, bool> V;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
  bool IsArr = false;
  bool IsObj = false;

  bool isNull() const { return !IsArr && !IsObj && V.index() == 0; }
  const std::string &str() const { return std::get<std::string>(V); }
  std::uint64_t uint() const { return std::get<std::uint64_t>(V); }
  double num() const {
    if (auto *U = std::get_if<std::uint64_t>(&V))
      return static_cast<double>(*U);
    return std::get<double>(V);
  }
  bool boolean() const { return std::get<bool>(V); }
  const std::vector<JsonValue> &arr() const {
    EXPECT_TRUE(IsArr);
    return Arr;
  }
  const std::map<std::string, JsonValue> &obj() const {
    EXPECT_TRUE(IsObj);
    return Obj;
  }
};

using JsonRecord = std::map<std::string, JsonValue>;

/// Parses the emitter's document shape: `[ {..}, {..} ]` with flat
/// objects. Fails the calling test (via ADD_FAILURE) and returns an
/// empty result on any malformed input, which is itself the signal the
/// round-trip tests exist to catch.
class MiniParser {
public:
  explicit MiniParser(const std::string &Text) : Text(Text) {}

  std::vector<JsonRecord> parseDocument() {
    std::vector<JsonRecord> Records;
    skipWs();
    if (!consume('[')) {
      ADD_FAILURE() << "document must open with '['";
      return Records;
    }
    skipWs();
    if (consume(']'))
      return Records; // empty array
    while (true) {
      JsonRecord Rec;
      if (!parseObject(Rec))
        return Records;
      Records.push_back(std::move(Rec));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Records;
      ADD_FAILURE() << "expected ',' or ']' at offset " << Pos;
      return Records;
    }
  }

private:
  bool parseObject(JsonRecord &Rec) {
    skipWs();
    if (!consume('{')) {
      ADD_FAILURE() << "expected '{' at offset " << Pos;
      return false;
    }
    skipWs();
    if (consume('}'))
      return true;
    while (true) {
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':')) {
        ADD_FAILURE() << "expected ':' after key \"" << Key << "\"";
        return false;
      }
      JsonValue Val;
      if (!parseValue(Val))
        return false;
      Rec.emplace(std::move(Key), std::move(Val));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      ADD_FAILURE() << "expected ',' or '}' at offset " << Pos;
      return false;
    }
  }

  bool parseValue(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size()) {
      ADD_FAILURE() << "unexpected end of document";
      return false;
    }
    const char C = Text[Pos];
    if (C == '{') {
      Out.IsObj = true;
      return parseObject(Out.Obj);
    }
    if (C == '[') {
      Out.IsArr = true;
      return parseArray(Out.Arr);
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out.V = std::move(S);
      return true;
    }
    if (literal("true")) {
      Out.V = true;
      return true;
    }
    if (literal("false")) {
      Out.V = false;
      return true;
    }
    if (literal("null")) {
      Out.V = std::monostate{};
      return true;
    }
    return parseNumber(Out);
  }

  bool parseArray(std::vector<JsonValue> &Out) {
    skipWs();
    if (!consume('[')) {
      ADD_FAILURE() << "expected '[' at offset " << Pos;
      return false;
    }
    skipWs();
    if (consume(']'))
      return true;
    while (true) {
      JsonValue Val;
      if (!parseValue(Val))
        return false;
      Out.push_back(std::move(Val));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      ADD_FAILURE() << "expected ',' or ']' at offset " << Pos;
      return false;
    }
  }

  bool parseString(std::string &Out) {
    skipWs();
    if (!consume('"')) {
      ADD_FAILURE() << "expected '\"' at offset " << Pos;
      return false;
    }
    while (Pos < Text.size()) {
      const char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      const char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          ADD_FAILURE() << "truncated \\u escape";
          return false;
        }
        const std::string Hex = Text.substr(Pos, 4);
        Pos += 4;
        const unsigned long Code = std::stoul(Hex, nullptr, 16);
        if (Code > 0xFF) {
          // The emitter only \u-escapes control bytes; anything wider
          // would be an emitter change this parser must flag.
          ADD_FAILURE() << "unexpected wide \\u escape: " << Hex;
          return false;
        }
        Out += static_cast<char>(Code);
        break;
      }
      default:
        ADD_FAILURE() << "unknown escape '\\" << E << "'";
        return false;
      }
    }
    ADD_FAILURE() << "unterminated string";
    return false;
  }

  bool parseNumber(JsonValue &Out) {
    const std::size_t Start = Pos;
    bool Fractional = false;
    while (Pos < Text.size()) {
      const char C = Text[Pos];
      if ((C >= '0' && C <= '9') || C == '+' || C == '-') {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E') {
        Fractional = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start) {
      ADD_FAILURE() << "expected a value at offset " << Pos;
      return false;
    }
    const std::string Tok = Text.substr(Start, Pos - Start);
    if (!Fractional && Tok[0] != '-') {
      Out.V = static_cast<std::uint64_t>(std::stoull(Tok));
      return true;
    }
    Out.V = std::stod(Tok);
    return true;
  }

  bool literal(const char *Lit) {
    const std::size_t Len = std::char_traits<char>::length(Lit);
    if (Text.compare(Pos, Len, Lit) != 0)
      return false;
    Pos += Len;
    return true;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\n' || Text[Pos] == '\t' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  const std::string &Text;
  std::size_t Pos = 0;
};

std::vector<JsonRecord> parse(const obs::JsonReporter &Json) {
  const std::string Doc = Json.str();
  MiniParser P(Doc);
  return P.parseDocument();
}

/// "s" + to_string(I) spelled without std::string operator+ (GCC 12's
/// -Wrestrict false-positives on the inlined concatenation).
std::string indexedKey(const char *Prefix, std::size_t I) {
  std::string Key(Prefix);
  Key += std::to_string(I);
  return Key;
}

//===----------------------------------------------------------------------===
// Round-trip tests
//===----------------------------------------------------------------------===

TEST(JsonReporter, EmptyDocumentIsAnEmptyArray) {
  obs::JsonReporter Json;
  EXPECT_EQ(Json.str(), "[]\n");
  EXPECT_TRUE(parse(Json).empty());
}

TEST(JsonReporter, StringEscapingRoundTrips) {
  const std::vector<std::string> Nasty = {
      "plain",
      "with \"quotes\" inside",
      "back\\slash and \\\" mix",
      "line\nbreak and\ttab",
      std::string("control\x01\x1f bytes"),
      "trailing backslash\\",
      "", // empty string
  };
  obs::JsonReporter Json;
  Json.beginRecord();
  for (std::size_t I = 0; I < Nasty.size(); ++I)
    Json.field(indexedKey("s", I), Nasty[I]);
  Json.endRecord();

  const std::vector<JsonRecord> Records = parse(Json);
  ASSERT_EQ(Records.size(), 1u);
  for (std::size_t I = 0; I < Nasty.size(); ++I) {
    const auto It = Records[0].find(indexedKey("s", I));
    ASSERT_NE(It, Records[0].end());
    EXPECT_EQ(It->second.str(), Nasty[I])
        << "string " << I << " did not survive the round trip";
  }
}

TEST(JsonReporter, KeysAreEscapedToo) {
  obs::JsonReporter Json;
  Json.beginRecord();
  Json.field(std::string("key \"with\" quotes\n"), std::uint64_t{7});
  Json.endRecord();
  const std::vector<JsonRecord> Records = parse(Json);
  ASSERT_EQ(Records.size(), 1u);
  const auto It = Records[0].find("key \"with\" quotes\n");
  ASSERT_NE(It, Records[0].end());
  EXPECT_EQ(It->second.uint(), 7u);
}

TEST(JsonReporter, NonFiniteDoublesBecomeNull) {
  obs::JsonReporter Json;
  Json.beginRecord();
  Json.field("nan", std::numeric_limits<double>::quiet_NaN());
  Json.field("inf", std::numeric_limits<double>::infinity());
  Json.field("ninf", -std::numeric_limits<double>::infinity());
  Json.field("fine", 0.5);
  Json.endRecord();
  const std::vector<JsonRecord> Records = parse(Json);
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_TRUE(Records[0].at("nan").isNull());
  EXPECT_TRUE(Records[0].at("inf").isNull());
  EXPECT_TRUE(Records[0].at("ninf").isNull());
  EXPECT_EQ(Records[0].at("fine").num(), 0.5);
}

TEST(JsonReporter, FullUint64RangeRoundTripsExactly) {
  // 2^53+1 and UINT64_MAX are NOT representable as doubles; emitting
  // them through any double path would silently round. The integer
  // overload must keep them exact.
  const std::uint64_t Exact[] = {
      0,
      1,
      (std::uint64_t{1} << 53) + 1,
      std::numeric_limits<std::uint64_t>::max(),
  };
  obs::JsonReporter Json;
  Json.beginRecord();
  for (std::size_t I = 0; I < std::size(Exact); ++I)
    Json.field(indexedKey("u", I), Exact[I]);
  Json.endRecord();
  const std::vector<JsonRecord> Records = parse(Json);
  ASSERT_EQ(Records.size(), 1u);
  for (std::size_t I = 0; I < std::size(Exact); ++I)
    EXPECT_EQ(Records[0].at(indexedKey("u", I)).uint(), Exact[I]);
}

TEST(JsonReporter, MixedRecordsKeepShapeAndValues) {
  obs::JsonReporter Json;
  Json.beginRecord();
  Json.field("object", "cs-stack");
  Json.field("threads", std::uint32_t{8});
  Json.field("throughput_ops_per_sec", 1.25e7);
  Json.field("strong", true);
  Json.endRecord();
  Json.beginRecord();
  Json.field("object", "nb-stack");
  Json.field("threads", std::uint32_t{1});
  Json.field("throughput_ops_per_sec", 3.5);
  Json.field("strong", false);
  Json.endRecord();

  const std::vector<JsonRecord> Records = parse(Json);
  ASSERT_EQ(Records.size(), 2u);
  EXPECT_EQ(Records[0].at("object").str(), "cs-stack");
  EXPECT_EQ(Records[0].at("threads").uint(), 8u);
  EXPECT_EQ(Records[0].at("throughput_ops_per_sec").num(), 1.25e7);
  EXPECT_TRUE(Records[0].at("strong").boolean());
  EXPECT_EQ(Records[1].at("object").str(), "nb-stack");
  EXPECT_FALSE(Records[1].at("strong").boolean());
}

TEST(JsonReporter, PathBreakdownSchemaParsesAndConserves) {
  // The same snapshot shape the benches emit; the parsed record must
  // contain every schema field and satisfy metric_ops == sum(path_*),
  // which is exactly what the CI bench-smoke validator asserts on real
  // BENCH_*.json output.
  obs::PathSnapshot S;
  S.Ops = 100;
  S.Paths[static_cast<unsigned>(obs::Path::Shortcut)] = 90;
  S.Paths[static_cast<unsigned>(obs::Path::Lock)] = 8;
  S.Paths[static_cast<unsigned>(obs::Path::Eliminated)] = 2;
  S.Events[static_cast<unsigned>(obs::Event::EliminatedPush)] = 1;
  S.Events[static_cast<unsigned>(obs::Event::EliminatedPop)] = 1;
  S.Events[static_cast<unsigned>(obs::Event::ShortcutAbort)] = 11;
  ASSERT_TRUE(S.conserves());

  obs::JsonReporter Json;
  Json.beginRecord();
  obs::emitPathBreakdown(Json, S);
  Json.endRecord();

  const std::vector<JsonRecord> Records = parse(Json);
  ASSERT_EQ(Records.size(), 1u);
  const JsonRecord &R = Records[0];
  const char *Required[] = {
      "metric_ops",        "path_shortcut",    "path_eliminated",
      "path_combined",     "path_lock",        "path_degraded",
      "shortcut_aborts",   "protected_retries", "degraded_retries",
      "eliminated_pushes", "eliminated_pops",  "combiner_batches",
      "combined_ops",      "doorway_timeouts", "lease_timeouts",
  };
  for (const char *Key : Required)
    ASSERT_TRUE(R.count(Key)) << "missing schema field " << Key;
  const std::uint64_t PathSum =
      R.at("path_shortcut").uint() + R.at("path_eliminated").uint() +
      R.at("path_combined").uint() + R.at("path_lock").uint() +
      R.at("path_degraded").uint();
  EXPECT_EQ(R.at("metric_ops").uint(), PathSum);
  EXPECT_EQ(R.at("metric_ops").uint(), 100u);
  EXPECT_EQ(R.at("shortcut_aborts").uint(), 11u);
}

//===----------------------------------------------------------------------===
// Nested arrays/objects (window time-series shape)
//===----------------------------------------------------------------------===

TEST(JsonReporter, FlatRecordLayoutIsByteStable) {
  // The nesting machinery must not perturb the historical flat layout:
  // downstream tooling (and this suite's exact-string assertions) key on
  // these bytes.
  obs::JsonReporter Json;
  Json.beginRecord();
  Json.field("a", std::uint64_t{1});
  Json.field("b", "x");
  Json.endRecord();
  EXPECT_EQ(Json.str(), "[\n  {\"a\": 1, \"b\": \"x\"}\n]\n");
}

TEST(JsonReporter, NestedWindowTimeSeriesRoundTrips) {
  // The exact shape bench_soak emits: a record carrying scalars plus a
  // "windows" array of per-window objects.
  obs::JsonReporter Json;
  Json.beginRecord();
  Json.field("object", "crash-tolerant");
  Json.field("slo_pass", true);
  Json.beginArray("windows");
  for (std::uint64_t W = 0; W < 3; ++W) {
    Json.beginObject();
    Json.field("window", W);
    Json.field("p99_ns", 1000 * (W + 1));
    Json.field("conserves", true);
    Json.endObject();
  }
  Json.endArray();
  Json.field("after", std::uint64_t{7}); // Fields may follow an array.
  Json.endRecord();

  const std::vector<JsonRecord> Records = parse(Json);
  ASSERT_EQ(Records.size(), 1u);
  const JsonRecord &R = Records[0];
  EXPECT_EQ(R.at("object").str(), "crash-tolerant");
  EXPECT_TRUE(R.at("slo_pass").boolean());
  EXPECT_EQ(R.at("after").uint(), 7u);
  const std::vector<JsonValue> &Windows = R.at("windows").arr();
  ASSERT_EQ(Windows.size(), 3u);
  for (std::uint64_t W = 0; W < 3; ++W) {
    const auto &Obj = Windows[W].obj();
    EXPECT_EQ(Obj.at("window").uint(), W);
    EXPECT_EQ(Obj.at("p99_ns").uint(), 1000 * (W + 1));
    EXPECT_TRUE(Obj.at("conserves").boolean());
  }
}

TEST(JsonReporter, ScalarArrayItemsRoundTrip) {
  obs::JsonReporter Json;
  Json.beginRecord();
  Json.beginArray("names");
  Json.item("a \"quoted\" one");
  Json.item(std::string("two"));
  Json.endArray();
  Json.beginArray("counts");
  Json.item(std::uint64_t{0});
  Json.item(std::numeric_limits<std::uint64_t>::max());
  Json.endArray();
  Json.beginArray("ratios");
  Json.item(0.25);
  Json.item(std::numeric_limits<double>::quiet_NaN()); // -> null
  Json.endArray();
  Json.beginArray("empty");
  Json.endArray();
  Json.endRecord();

  const std::vector<JsonRecord> Records = parse(Json);
  ASSERT_EQ(Records.size(), 1u);
  const JsonRecord &R = Records[0];
  ASSERT_EQ(R.at("names").arr().size(), 2u);
  EXPECT_EQ(R.at("names").arr()[0].str(), "a \"quoted\" one");
  EXPECT_EQ(R.at("names").arr()[1].str(), "two");
  ASSERT_EQ(R.at("counts").arr().size(), 2u);
  EXPECT_EQ(R.at("counts").arr()[0].uint(), 0u);
  EXPECT_EQ(R.at("counts").arr()[1].uint(),
            std::numeric_limits<std::uint64_t>::max());
  ASSERT_EQ(R.at("ratios").arr().size(), 2u);
  EXPECT_EQ(R.at("ratios").arr()[0].num(), 0.25);
  EXPECT_TRUE(R.at("ratios").arr()[1].isNull());
  EXPECT_TRUE(R.at("empty").arr().empty());
}

TEST(JsonReporter, NestedObjectFieldsAndDeepNestingRoundTrip) {
  obs::JsonReporter Json;
  Json.beginRecord();
  Json.beginObject("verdict");
  Json.field("pass", false);
  Json.beginArray("violations");
  Json.beginObject();
  Json.field("metric", "sojourn_p99_ns");
  Json.field("observed", 2.5e9);
  Json.endObject();
  Json.endArray();
  Json.endObject();
  Json.endRecord();

  const std::vector<JsonRecord> Records = parse(Json);
  ASSERT_EQ(Records.size(), 1u);
  const auto &Verdict = Records[0].at("verdict").obj();
  EXPECT_FALSE(Verdict.at("pass").boolean());
  const auto &Violations = Verdict.at("violations").arr();
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].obj().at("metric").str(), "sojourn_p99_ns");
  EXPECT_EQ(Violations[0].obj().at("observed").num(), 2.5e9);
}

} // namespace
} // namespace csobj
