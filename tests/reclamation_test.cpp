//===- tests/reclamation_test.cpp - Reclamation substrate tests ----------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and race tests for the safe-memory-reclamation substrate
/// (memory/HazardDomain.h, memory/NodePool.h) and its crash contract:
///
///  * protect/clear/scan semantics — a protected object survives every
///    scan, clears make it reclaimable, the amortized threshold scan
///    keeps per-thread retire lists bounded;
///  * the publish/validate handshake under real concurrency — a pinned,
///    validated node is never recycled while pinned (generation-counter
///    canary);
///  * crash-and-resurrection over the unbounded objects — rate-based
///    ProcessCrash campaigns across churny chunk turnover must never
///    double-free, leak unboundedly, or wedge the backlog (the retire
///    list follows the thread id, so a resurrected worker drains its
///    predecessor's backlog);
///  * NodePool type-stability and recycling.
///
//===----------------------------------------------------------------------===//

#include "core/SkipListCore.h"
#include "core/UnboundedQueue.h"
#include "core/UnboundedStack.h"
#include "faults/FaultInjector.h"
#include "faults/FaultPlan.h"
#include "memory/HazardDomain.h"
#include "memory/NodePool.h"
#include "memory/SchedHook.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace csobj {
namespace {

/// Recycle canary: counts recycles and exposes a generation the race
/// tests read while pinned.
struct Counted {
  std::atomic<std::uint32_t> Gen{0};
};

void bumpGen(void *Obj, void * /*Ctx*/) {
  static_cast<Counted *>(Obj)->Gen.fetch_add(1, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===
// HazardDomain unit semantics
//===----------------------------------------------------------------------===

TEST(HazardDomainTest, ProtectedObjectSurvivesScanUntilCleared) {
  HazardDomain D(2, 2);
  Counted A;
  D.protect(0, 0, &A);
  EXPECT_EQ(D.protectedForTesting(0, 0), &A);

  D.retire(1, &A, bumpGen, nullptr);
  EXPECT_EQ(D.retireBacklog(), 1u);
  EXPECT_EQ(D.scan(1), 0u) << "scan recycled a protected object";
  EXPECT_EQ(A.Gen.load(), 0u);
  EXPECT_EQ(D.retireBacklog(), 1u);

  D.clear(0, 0);
  EXPECT_EQ(D.protectedForTesting(0, 0), nullptr);
  EXPECT_EQ(D.scan(1), 1u);
  EXPECT_EQ(A.Gen.load(), 1u);
  EXPECT_EQ(D.retireBacklog(), 0u);
}

TEST(HazardDomainTest, ClearAllerasesEverySlotOfTheThreadOnly) {
  HazardDomain D(2, 3);
  Counted A, B;
  D.protect(0, 0, &A);
  D.protect(0, 2, &B);
  D.protect(1, 1, &A);
  D.clearAll(0);
  for (std::uint32_t S = 0; S < 3; ++S)
    EXPECT_EQ(D.protectedForTesting(0, S), nullptr);
  EXPECT_EQ(D.protectedForTesting(1, 1), &A)
      << "clearAll must not touch other threads' slots";
  D.clearAll(1);
}

TEST(HazardDomainTest, ThresholdScanKeepsBacklogBounded) {
  HazardDomain D(2, 2); // threshold = 2*2*2 = 8
  ASSERT_EQ(D.scanThreshold(), 8u);
  std::vector<Counted> Objs(64);
  for (Counted &C : Objs)
    D.retire(0, &C, bumpGen, nullptr);
  // Every retire at the threshold triggers a scan and nothing is
  // protected, so the list never survives past the threshold.
  EXPECT_LE(D.retireHighWater(), D.scanThreshold());
  EXPECT_LT(D.retireBacklog(), D.scanThreshold());
  D.quiescentScanAll();
  EXPECT_EQ(D.retireBacklog(), 0u);
  for (Counted &C : Objs)
    EXPECT_EQ(C.Gen.load(), 1u) << "an entry was recycled twice or never";
}

TEST(HazardDomainTest, RetireListFollowsTheThreadIdAcrossResurrection) {
  // A "crashed" thread's backlog is drained by the next worker that
  // runs with the same logical id — retire lists are Tid-indexed state,
  // not thread-lifetime state.
  HazardDomain D(2, 1);
  Counted A;
  std::thread First([&] { D.retire(0, &A, bumpGen, nullptr); });
  First.join(); // the "crash": the OS thread is gone, the backlog stays
  EXPECT_EQ(D.retireBacklog(), 1u);
  std::thread Second([&] { EXPECT_EQ(D.scan(0), 1u); });
  Second.join();
  EXPECT_EQ(A.Gen.load(), 1u);
  EXPECT_EQ(D.retireBacklog(), 0u);
}

TEST(HazardDomainTest, DestructorDropsEntriesWithoutRecycling) {
  Counted A;
  {
    HazardDomain D(1, 1);
    D.protect(0, 0, &A); // keep it un-reclaimable
    D.retire(0, &A, bumpGen, nullptr);
  }
  EXPECT_EQ(A.Gen.load(), 0u)
      << "domain destruction must not run recycle callbacks: the owning "
         "structure frees storage wholesale in its own destructor";
}

TEST(HazardGuardTest, ClearsItsSlotOnUnwind) {
  HazardDomain D(1, 1);
  Counted A;
  try {
    HazardGuard G(D, 0, 0);
    G.protect(&A);
    ASSERT_EQ(D.protectedForTesting(0, 0), &A);
    throw ProcessCrash{};
  } catch (const ProcessCrash &) {
  }
  EXPECT_EQ(D.protectedForTesting(0, 0), nullptr)
      << "a crashed operation stranded its hazard";
}

//===----------------------------------------------------------------------===
// Publish/validate handshake under real concurrency
//===----------------------------------------------------------------------===

// One writer repeatedly swaps a shared "current" pointer between nodes
// and retires the displaced one; readers pin current via the hazard
// handshake and assert the pinned node's generation is stable while
// pinned. Any scan-vs-protect race that recycled a pinned node shows up
// as a generation change (and as a TSan race on the reader's reads).
TEST(HazardDomainRaceTest, PinnedNodeIsNeverRecycledWhilePinned) {
  constexpr std::uint32_t Readers = 3;
  constexpr std::uint32_t Iters = 20000;
  HazardDomain D(Readers + 1, 1);
  NodePool<Counted> Pool;

  // Real-structure recycler shape: mark the storage dead (generation
  // bump, the canary the pinned readers watch) and hand it back to the
  // pool for reuse.
  const auto RecycleToPool = [](void *Obj, void *Ctx) {
    bumpGen(Obj, nullptr);
    NodePool<Counted>::recycle(Obj, Ctx);
  };

  std::atomic<Counted *> Current{Pool.acquire()};
  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Validated{0};

  std::vector<std::thread> Threads;
  for (std::uint32_t R = 0; R < Readers; ++R)
    Threads.emplace_back([&, R] {
      while (!Stop.load(std::memory_order_acquire)) {
        Counted *C = Current.load(std::memory_order_acquire);
        D.protect(R, 0, C);
        if (Current.load(std::memory_order_seq_cst) != C) {
          D.clear(R, 0);
          continue; // moved under us; the pin may be too late to trust
        }
        // Pinned and validated: the generation must hold still.
        const std::uint32_t G0 = C->Gen.load(std::memory_order_relaxed);
        for (int Spin = 0; Spin < 8; ++Spin)
          EXPECT_EQ(C->Gen.load(std::memory_order_relaxed), G0)
              << "node recycled while hazard-pinned";
        Validated.fetch_add(1, std::memory_order_relaxed);
        D.clear(R, 0);
      }
    });

  const std::uint32_t WriterTid = Readers;
  for (std::uint32_t I = 0; I < Iters; ++I) {
    Counted *Fresh = Pool.acquire();
    Counted *Old = Current.exchange(Fresh, std::memory_order_seq_cst);
    D.retire(WriterTid, Old, RecycleToPool, &Pool);
  }
  // Under full churn the validate step can lose every race; with the
  // writer idle it succeeds immediately. Wait for real coverage before
  // stopping so the assertion below is deterministic.
  while (Validated.load(std::memory_order_relaxed) < Readers)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();

  EXPECT_GE(Validated.load(), Readers) << "no reader ever validated a pin";
  D.quiescentScanAll();
  EXPECT_EQ(D.retireBacklog(), 0u);
  // Everything retired was recycled exactly once; one node is still
  // live in Current.
  EXPECT_EQ(Pool.freeCount() + 1, Pool.allocatedCount());
}

//===----------------------------------------------------------------------===
// NodePool
//===----------------------------------------------------------------------===

TEST(NodePoolTest, RecyclesStorageTypeStably) {
  NodePool<Counted> Pool;
  Counted *A = Pool.acquire();
  EXPECT_EQ(Pool.allocatedCount(), 1u);
  EXPECT_EQ(Pool.freeCount(), 0u);
  Pool.release(A);
  EXPECT_EQ(Pool.freeCount(), 1u);
  EXPECT_EQ(Pool.acquire(), A) << "free list must hand back the storage";
  Counted *B = Pool.acquire();
  EXPECT_NE(B, A);
  EXPECT_EQ(Pool.allocatedCount(), 2u);
  EXPECT_GT(Pool.heapBytes(), 2 * sizeof(Counted) - 1);
  // The HazardDomain-compatible recycler is just release().
  NodePool<Counted>::recycle(B, &Pool);
  EXPECT_EQ(Pool.freeCount(), 1u);
}

//===----------------------------------------------------------------------===
// Crash-and-resurrection churn over the unbounded objects
//===----------------------------------------------------------------------===

/// Drives \p Workers threads of mixed ops with a rate-based crash plan;
/// each ProcessCrash is caught and the worker re-enters with the same
/// Tid (resurrection). Conservation and backlog drain are asserted at
/// quiescence; ASan/LSan (CI) turn any double-free or leak fatal.
template <typename Obj, typename PushFn, typename PopFn>
void crashChurn(Obj &O, PushFn Push, PopFn Pop, std::uint32_t Workers) {
  constexpr std::uint32_t OpsPerWorker = 6000;
  std::atomic<std::uint64_t> Pushed{0}, Popped{0}, Crashes{0};
  FaultClock Clock;

  std::vector<std::thread> Threads;
  for (std::uint32_t Tid = 0; Tid < Workers; ++Tid)
    Threads.emplace_back([&, Tid] {
      const FaultPlan Plan = FaultPlan::crashAtRate(Tid, /*Permille=*/5);
      std::uint32_t Done = 0;
      while (Done < OpsPerWorker) {
        // One "process" lifetime; a crash unwinds to here and the
        // resurrected worker (same Tid) continues the remaining ops.
        FaultInjector Hook(Plan, Tid, Clock);
        SchedHookScope Scope(Hook);
        try {
          while (Done < OpsPerWorker) {
            const bool IsPush = (Done ^ Tid) % 3 != 0;
            if (IsPush) {
              if (Push(O, Tid, Done + 1) == PushResult::Done)
                Pushed.fetch_add(1, std::memory_order_relaxed);
            } else {
              if (Pop(O, Tid).isValue())
                Popped.fetch_add(1, std::memory_order_relaxed);
            }
            ++Done;
          }
        } catch (const ProcessCrash &) {
          Crashes.fetch_add(1, std::memory_order_relaxed);
          ++Done; // the op in flight died with the process
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  ASSERT_GT(Crashes.load(), 0u) << "the campaign never fired";
  // Quiescent accounting. A crash can land between an op's linearizing
  // C&S and the count bump above, so size may exceed Pushed - Popped by
  // at most the number of crashes.
  const std::uint64_t Net = Pushed.load() - Popped.load();
  const std::uint64_t Size = O.sizeForTesting();
  EXPECT_LE(Size > Net ? Size - Net : Net - Size, Crashes.load())
      << "conservation violated beyond the crash envelope";
  // Drained backlog: no retired chunk is stranded once hazards quiesce.
  O.domain().quiescentScanAll();
  EXPECT_EQ(O.domain().retireBacklog(), 0u);
  EXPECT_LE(O.domain().retireHighWater(), O.domain().scanThreshold());
}

TEST(ReclamationCrashTest, UnboundedStackSurvivesCrashCampaign) {
  UnboundedStack<> S(4);
  crashChurn(
      S,
      [](UnboundedStack<> &O, std::uint32_t Tid, std::uint32_t V) {
        return O.weakPush(Tid, V);
      },
      [](UnboundedStack<> &O, std::uint32_t Tid) { return O.weakPop(Tid); },
      4);
}

TEST(ReclamationCrashTest, UnboundedQueueSurvivesCrashCampaign) {
  UnboundedQueue<> Q(4);
  crashChurn(
      Q,
      [](UnboundedQueue<> &O, std::uint32_t Tid, std::uint32_t V) {
        return O.weakEnqueue(Tid, V);
      },
      [](UnboundedQueue<> &O, std::uint32_t Tid) {
        return O.weakDequeue(Tid);
      },
      4);
}

TEST(ReclamationCrashTest, SkipListSurvivesCrashCampaign) {
  // Map churn with crashes: the erase tail (mark/sweep/retire) is
  // crash-atomic with its ValState C&S because injectors fire only at
  // counted accesses — so no key can be half-removed and no node
  // double-retired, whatever the crash timing.
  SkipListCore<> L(4, 32);
  constexpr std::uint32_t OpsPerWorker = 4000;
  std::atomic<std::uint64_t> Crashes{0};
  FaultClock Clock;
  std::vector<std::thread> Threads;
  for (std::uint32_t Tid = 0; Tid < 4; ++Tid)
    Threads.emplace_back([&, Tid] {
      const FaultPlan Plan = FaultPlan::crashAtRate(Tid, /*Permille=*/5);
      std::uint32_t Done = 0;
      while (Done < OpsPerWorker) {
        FaultInjector Hook(Plan, Tid, Clock);
        SchedHookScope Scope(Hook);
        try {
          while (Done < OpsPerWorker) {
            const std::uint32_t K = (Done * 7 + Tid) % 48;
            switch (Done % 3) {
            case 0:
              (void)L.weakInsert(Tid, K, Done);
              break;
            case 1:
              (void)L.weakErase(Tid, K);
              break;
            default:
              (void)L.get(Tid, K);
              break;
            }
            ++Done;
          }
        } catch (const ProcessCrash &) {
          Crashes.fetch_add(1, std::memory_order_relaxed);
          ++Done;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  ASSERT_GT(Crashes.load(), 0u) << "the campaign never fired";

  // The live walk and the admission counter agree at quiescence up to
  // the crash envelope (a crash between the link C&S and the uncounted
  // counter bump leaves a linked node the counter missed — bounded by
  // one per crash, never accumulating past the worker's resurrection).
  const std::uint32_t Walk = L.liveCountForTesting();
  const std::uint32_t Ctr = L.liveCounterForTesting();
  const std::uint32_t Diff = Walk > Ctr ? Walk - Ctr : Ctr - Walk;
  EXPECT_LE(Diff, Crashes.load()) << "walk " << Walk << " vs counter "
                                  << Ctr;
  L.domain().quiescentScanAll();
  EXPECT_EQ(L.domain().retireBacklog(), 0u);
  EXPECT_LE(L.domain().retireHighWater(), L.domain().scanThreshold());
}

} // namespace
} // namespace csobj
