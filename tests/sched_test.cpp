//===- tests/sched_test.cpp - Interleaving explorer tests ----------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the schedule-controlled execution machinery itself, then
/// uses it to *prove bounded versions* of the paper's claims:
///
///  * every interleaving of two weak stack operations linearizes and
///    aborted operations have no effect (Figure 1);
///  * enqueue and dequeue on a non-empty, non-full queue never abort
///    each other, under every interleaving (the Section 1 motivation);
///  * the Figure 3 strong operations complete without bottom under
///    randomized adversarial scheduling (starvation-freedom evidence);
///  * mutual exclusion of the lock substrate under controlled schedules.
///
//===----------------------------------------------------------------------===//

#include "sched/Explorer.h"

#include "core/AbortableQueue.h"
#include "core/AbortableStack.h"
#include "core/ContentionSensitiveStack.h"
#include "lincheck/Checker.h"
#include "lincheck/Spec.h"
#include "locks/TasLock.h"
#include "memory/AtomicRegister.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// Machinery sanity
//===----------------------------------------------------------------------===

TEST(ExplorerTest, CountsInterleavingsOfIndependentAccesses) {
  // Two threads, two shared accesses each: C(4,2) = 6 interleavings.
  ScheduleExplorer Explorer;
  const ExploreResult Result = Explorer.exploreAll([] {
    auto Reg = std::make_shared<AtomicRegister<std::uint32_t>>(0);
    ScenarioRun Run;
    Run.Bodies.push_back([Reg] {
      Reg->write(1);
      Reg->write(2);
    });
    Run.Bodies.push_back([Reg] {
      (void)Reg->read();
      (void)Reg->read();
    });
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Result.Runs, 6u);
  EXPECT_EQ(Result.MaxDepth, 4u);
  EXPECT_EQ(Result.CappedRuns, 0u);
}

TEST(ExplorerTest, SingleThreadHasOneSchedule) {
  ScheduleExplorer Explorer;
  std::uint32_t Final = 0;
  const ExploreResult Result = Explorer.exploreAll([&Final] {
    auto Reg = std::make_shared<AtomicRegister<std::uint32_t>>(0);
    ScenarioRun Run;
    Run.Bodies.push_back([Reg] {
      Reg->write(7);
      (void)Reg->compareAndSwap(7, 9);
    });
    Run.PostCheck = [Reg, &Final] { Final = Reg->peekForTesting(); };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Result.Runs, 1u);
  EXPECT_EQ(Final, 9u);
}

TEST(ExplorerTest, ThreeThreadsOneAccessEach) {
  // 3! = 6 orderings.
  ScheduleExplorer Explorer;
  const ExploreResult Result = Explorer.exploreAll([] {
    auto Reg = std::make_shared<AtomicRegister<std::uint32_t>>(0);
    ScenarioRun Run;
    for (int T = 0; T < 3; ++T)
      Run.Bodies.push_back([Reg] { (void)Reg->read(); });
    return Run;
  });
  EXPECT_EQ(Result.Runs, 6u);
}

TEST(ExplorerTest, RandomWalksRunRequestedCount) {
  ScheduleExplorer Explorer;
  const ExploreResult Result = Explorer.randomWalks(
      [] {
        auto Reg = std::make_shared<AtomicRegister<std::uint32_t>>(0);
        ScenarioRun Run;
        Run.Bodies.push_back([Reg] { Reg->write(1); });
        Run.Bodies.push_back([Reg] { Reg->write(2); });
        return Run;
      },
      25, /*Seed=*/7);
  EXPECT_EQ(Result.Runs, 25u);
  EXPECT_EQ(Result.CappedRuns, 0u);
}

TEST(ExplorerTest, RacingCasExactlyOneWinnerInEveryInterleaving) {
  ScheduleExplorer Explorer;
  std::uint64_t Failures = 0;
  const ExploreResult Result = Explorer.exploreAll([&Failures] {
    auto Reg = std::make_shared<AtomicRegister<std::uint32_t>>(0);
    auto Wins = std::make_shared<std::vector<bool>>(2);
    ScenarioRun Run;
    for (std::uint32_t T = 0; T < 2; ++T)
      Run.Bodies.push_back([Reg, Wins, T] {
        (*Wins)[T] = Reg->compareAndSwap(0, T + 1);
      });
    Run.PostCheck = [Wins, &Failures] {
      if ((*Wins)[0] + (*Wins)[1] != 1)
        ++Failures;
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Failures, 0u);
  EXPECT_EQ(Result.Runs, 2u); // Two orders of the two C&S steps.
}

TEST(ExplorerTest, KillFlagCrashesThreadBeforeTheAccess) {
  // A thread killed at its K-th access leaves exactly K-1... rather: a
  // kill at decision step S unwinds the thread at that parked access;
  // the access itself never executes.
  InterleaveScheduler Scheduler(1);
  AtomicRegister<std::uint32_t> Reg(0);
  const auto Trace = Scheduler.run(
      {[&Reg] {
        Reg.write(1);
        Reg.write(2); // Killed here: never executes.
        Reg.write(3);
      }},
      [](std::size_t Step, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        if (Step == 1)
          return Parked.front() | InterleaveScheduler::KillFlag;
        return Parked.front();
      });
  EXPECT_EQ(Trace.Decisions.size(), 2u);
  EXPECT_EQ(Reg.peekForTesting(), 1u);
}

TEST(ExplorerTest, KilledThreadDoesNotBlockOthers) {
  InterleaveScheduler Scheduler(2);
  AtomicRegister<std::uint32_t> Reg(0);
  std::uint32_t SurvivorSaw = 0;
  (void)Scheduler.run(
      {[&Reg] {
         Reg.write(7); // Killed at this very first access.
       },
       [&Reg, &SurvivorSaw] {
         Reg.write(5);
         SurvivorSaw = Reg.read();
       }},
      [](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        // Kill thread 0 whenever it is parked; run thread 1 otherwise.
        if (Parked.front() == 0)
          return 0 | InterleaveScheduler::KillFlag;
        return Parked.front();
      });
  EXPECT_EQ(SurvivorSaw, 5u);
  EXPECT_EQ(Reg.peekForTesting(), 5u);
}

//===----------------------------------------------------------------------===
// Figure 1 under exhaustive interleaving
//===----------------------------------------------------------------------===

TEST(ExhaustiveStack, TwoConcurrentPushesAlwaysLinearize) {
  ScheduleExplorer Explorer;
  std::uint64_t Violations = 0;
  std::uint64_t SoloAborts = 0;
  const ExploreResult Result = Explorer.exploreAll([&] {
    auto Stack = std::make_shared<AbortableStack<>>(4);
    auto Results = std::make_shared<std::vector<PushResult>>(
        2, PushResult::Abort);
    ScenarioRun Run;
    for (std::uint32_t T = 0; T < 2; ++T)
      Run.Bodies.push_back([Stack, Results, T] {
        (*Results)[T] = Stack->weakPush(T + 1);
      });
    Run.PostCheck = [Stack, Results, &Violations, &SoloAborts] {
      const int Dones =
          ((*Results)[0] == PushResult::Done) +
          ((*Results)[1] == PushResult::Done);
      // Non-blocking core property: at least one concurrent operation
      // succeeds, and aborted pushes leave no trace.
      if (Dones < 1)
        ++SoloAborts;
      if (Stack->sizeForTesting() != static_cast<std::uint32_t>(Dones))
        ++Violations;
      // Drain and verify only successful values are present.
      std::uint32_t Popped = 0;
      while (true) {
        const auto R = Stack->weakPop();
        if (!R.isValue())
          break;
        ++Popped;
        const std::uint32_t V = R.value();
        if (V != 1 && V != 2)
          ++Violations;
        if ((*Results)[V - 1] != PushResult::Done)
          ++Violations; // An aborted push's value surfaced.
      }
      if (Popped != static_cast<std::uint32_t>(Dones))
        ++Violations;
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Violations, 0u);
  EXPECT_EQ(SoloAborts, 0u) << "both concurrent pushes aborted somewhere";
  EXPECT_GT(Result.Runs, 10u);
}

TEST(ExhaustiveStack, PushRacingPopLinearizesInEveryInterleaving) {
  ScheduleExplorer Explorer;
  std::uint64_t NotLinearizable = 0;
  const ExploreResult Result = Explorer.exploreAll([&] {
    auto Stack = std::make_shared<AbortableStack<>>(4);
    // Prefill with 9 (solo, cannot abort).
    EXPECT_EQ(Stack->weakPush(9), PushResult::Done);
    auto PushRes = std::make_shared<PushResult>(PushResult::Abort);
    auto PopRes = std::make_shared<PopResult<std::uint32_t>>(
        PopResult<std::uint32_t>::abort());
    ScenarioRun Run;
    Run.Bodies.push_back(
        [Stack, PushRes] { *PushRes = Stack->weakPush(5); });
    Run.Bodies.push_back([Stack, PopRes] { *PopRes = Stack->weakPop(); });
    Run.PostCheck = [&NotLinearizable, PushRes, PopRes] {
      // Build the completed-op history: prefill strictly precedes the
      // two racing operations, which fully overlap each other.
      History H;
      Operation Prefill;
      Prefill.Tid = 0;
      Prefill.Code = OpCode::Push;
      Prefill.Arg = 9;
      Prefill.Result = ResCode::Done;
      Prefill.InvokeNs = 0;
      Prefill.ResponseNs = 1;
      H.Ops.push_back(Prefill);
      if (*PushRes == PushResult::Done) {
        Operation Op;
        Op.Tid = 1;
        Op.Code = OpCode::Push;
        Op.Arg = 5;
        Op.Result = ResCode::Done;
        Op.InvokeNs = 10;
        Op.ResponseNs = 20;
        H.Ops.push_back(Op);
      }
      if (!PopRes->isAbort()) {
        Operation Op;
        Op.Tid = 2;
        Op.Code = OpCode::Pop;
        Op.Result = PopRes->isValue() ? ResCode::Value : ResCode::Empty;
        if (PopRes->isValue())
          Op.RetValue = PopRes->value();
        Op.InvokeNs = 10;
        Op.ResponseNs = 20;
        H.Ops.push_back(Op);
      }
      if (!checkLinearizable(H, BoundedStackSpec(4)).Linearizable)
        ++NotLinearizable;
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(NotLinearizable, 0u);
  EXPECT_GT(Result.Runs, 10u);
}

TEST(ExhaustiveStack, TwoPopsOnTwoElementsNeverDuplicate) {
  ScheduleExplorer Explorer;
  std::uint64_t Violations = 0;
  const ExploreResult Result = Explorer.exploreAll([&] {
    auto Stack = std::make_shared<AbortableStack<>>(4);
    EXPECT_EQ(Stack->weakPush(1), PushResult::Done);
    EXPECT_EQ(Stack->weakPush(2), PushResult::Done);
    auto Res = std::make_shared<std::vector<PopResult<std::uint32_t>>>(
        2, PopResult<std::uint32_t>::abort());
    ScenarioRun Run;
    for (std::uint32_t T = 0; T < 2; ++T)
      Run.Bodies.push_back(
          [Stack, Res, T] { (*Res)[T] = Stack->weakPop(); });
    Run.PostCheck = [Stack, Res, &Violations] {
      std::vector<std::uint32_t> Got;
      for (const auto &R : *Res)
        if (R.isValue())
          Got.push_back(R.value());
      // At least one pop succeeds (non-blocking core); no duplicates;
      // LIFO: a single success must take the top (2); two successes
      // take 2 then 1 in some order.
      if (Got.empty())
        ++Violations;
      if (Got.size() == 1 && Got[0] != 2)
        ++Violations;
      if (Got.size() == 2 &&
          !((Got[0] == 2 && Got[1] == 1) || (Got[0] == 1 && Got[1] == 2)))
        ++Violations;
      if (Stack->sizeForTesting() != 2 - Got.size())
        ++Violations;
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Violations, 0u);
}

TEST(ExhaustiveStack, HelpCompletesLazyWriteInEveryInterleaving) {
  // After a successful push published <1, v, sn> in TOP, the *next*
  // operation must install v into STACK[1] (lines 15-16) — whichever
  // operation that is, under every interleaving of two helpers.
  ScheduleExplorer Explorer;
  std::uint64_t Violations = 0;
  const ExploreResult Result = Explorer.exploreAll([&] {
    auto Stack = std::make_shared<AbortableStack<>>(4);
    EXPECT_EQ(Stack->weakPush(7), PushResult::Done);
    // The lazy write is pending: STACK[1] still holds bottom.
    EXPECT_EQ(Stack->slotForTesting(1).Value, AbortableStack<>::Bottom);
    ScenarioRun Run;
    Run.Bodies.push_back([Stack] { (void)Stack->weakPush(8); });
    Run.Bodies.push_back([Stack] { (void)Stack->weakPop(); });
    Run.PostCheck = [Stack, &Violations] {
      // Whatever happened, the helped slot now carries 7 (the lazy
      // write completed exactly once thanks to the seqnb guard).
      if (Stack->slotForTesting(1).Value != 7)
        ++Violations;
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Violations, 0u);
}

//===----------------------------------------------------------------------===
// The queue non-interference claim, exhaustively
//===----------------------------------------------------------------------===

TEST(ExhaustiveQueue, EnqueueDequeueOnNonEmptyQueueNeverInterfere) {
  // Section 1: "the operations that concurrently access an object are
  // not interfering (e.g., enqueuing and dequeuing on a non-empty
  // queue)". Exhaustive proof for the bounded scenario: queue holds 2 of
  // 4; one enqueue races one dequeue; NO interleaving aborts either, and
  // the dequeue returns the oldest element.
  ScheduleExplorer Explorer;
  std::uint64_t Aborts = 0;
  std::uint64_t WrongValue = 0;
  const ExploreResult Result = Explorer.exploreAll([&] {
    auto Queue = std::make_shared<AbortableQueue<>>(4);
    EXPECT_EQ(Queue->weakEnqueue(11), PushResult::Done);
    EXPECT_EQ(Queue->weakEnqueue(22), PushResult::Done);
    auto EnqRes = std::make_shared<PushResult>(PushResult::Abort);
    auto DeqRes = std::make_shared<PopResult<std::uint32_t>>(
        PopResult<std::uint32_t>::abort());
    ScenarioRun Run;
    Run.Bodies.push_back(
        [Queue, EnqRes] { *EnqRes = Queue->weakEnqueue(33); });
    Run.Bodies.push_back(
        [Queue, DeqRes] { *DeqRes = Queue->weakDequeue(); });
    Run.PostCheck = [EnqRes, DeqRes, &Aborts, &WrongValue] {
      if (*EnqRes != PushResult::Done || !DeqRes->isValue())
        ++Aborts;
      else if (DeqRes->value() != 11)
        ++WrongValue;
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Aborts, 0u);
  EXPECT_EQ(WrongValue, 0u);
  EXPECT_GT(Result.Runs, 50u);
}

TEST(ExhaustiveQueue, TwoDequeuesOnTwoElementsConsistent) {
  ScheduleExplorer Explorer;
  std::uint64_t Violations = 0;
  const ExploreResult Result = Explorer.exploreAll([&] {
    auto Queue = std::make_shared<AbortableQueue<>>(4);
    EXPECT_EQ(Queue->weakEnqueue(1), PushResult::Done);
    EXPECT_EQ(Queue->weakEnqueue(2), PushResult::Done);
    auto Res = std::make_shared<std::vector<PopResult<std::uint32_t>>>(
        2, PopResult<std::uint32_t>::abort());
    ScenarioRun Run;
    for (std::uint32_t T = 0; T < 2; ++T)
      Run.Bodies.push_back(
          [Queue, Res, T] { (*Res)[T] = Queue->weakDequeue(); });
    Run.PostCheck = [Queue, Res, &Violations] {
      // At least one dequeue succeeds; successful values are distinct,
      // in FIFO order from 1, and the queue size matches.
      std::vector<std::uint32_t> Got;
      for (const auto &R : *Res)
        if (R.isValue())
          Got.push_back(R.value());
      if (Got.empty())
        ++Violations;
      if (Got.size() == 1 && Got[0] != 1)
        ++Violations;
      if (Got.size() == 2 && !((Got[0] == 1 && Got[1] == 2) ||
                               (Got[0] == 2 && Got[1] == 1)))
        ++Violations;
      if (Queue->sizeForTesting() != 2 - Got.size())
        ++Violations;
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Violations, 0u);
}

//===----------------------------------------------------------------------===
// Figure 3 under randomized adversarial scheduling
//===----------------------------------------------------------------------===

TEST(RandomizedFigure3, StrongOperationsAlwaysCompleteWithoutBottom) {
  ScheduleExplorer Explorer(ExploreOptions{/*MaxRuns=*/0,
                                           /*StepCap=*/20000});
  std::uint64_t Violations = 0;
  const ExploreResult Result = Explorer.randomWalks(
      [&] {
        auto Stack =
            std::make_shared<ContentionSensitiveStack<>>(/*NumThreads=*/2,
                                                         /*Capacity=*/4);
        auto Results = std::make_shared<std::vector<PushResult>>(
            2, PushResult::Abort);
        ScenarioRun Run;
        for (std::uint32_t T = 0; T < 2; ++T)
          Run.Bodies.push_back([Stack, Results, T] {
            (*Results)[T] = Stack->push(T, T + 1);
          });
        Run.PostCheck = [Stack, Results, &Violations] {
          if ((*Results)[0] != PushResult::Done ||
              (*Results)[1] != PushResult::Done)
            ++Violations;
          if (Stack->sizeForTesting() != 2)
            ++Violations;
        };
        return Run;
      },
      150, /*Seed=*/41);
  EXPECT_EQ(Result.Runs, 150u);
  EXPECT_EQ(Result.CappedRuns, 0u) << "a schedule starved Figure 3";
  EXPECT_EQ(Violations, 0u);
}

//===----------------------------------------------------------------------===
// Lock substrate under controlled schedules
//===----------------------------------------------------------------------===

TEST(RandomizedLock, TasLockMutualExclusionUnderAdversary) {
  ScheduleExplorer Explorer(ExploreOptions{/*MaxRuns=*/0,
                                           /*StepCap=*/20000});
  std::uint64_t Violations = 0;
  const ExploreResult Result = Explorer.randomWalks(
      [&] {
        auto Lock = std::make_shared<TasLock>(2);
        auto State = std::make_shared<std::vector<std::uint32_t>>(2, 0);
        // State[0]: occupancy check; State[1]: completed increments.
        ScenarioRun Run;
        for (std::uint32_t T = 0; T < 2; ++T)
          Run.Bodies.push_back([Lock, State, T] {
            Lock->lock(T);
            if (++(*State)[0] != 1)
              (*State)[1] += 1000000; // Poison on violation.
            --(*State)[0];
            ++(*State)[1];
            Lock->unlock(T);
          });
        Run.PostCheck = [State, &Violations] {
          if ((*State)[1] != 2)
            ++Violations;
        };
        return Run;
      },
      150, /*Seed=*/43);
  EXPECT_EQ(Result.Runs, 150u);
  EXPECT_EQ(Result.CappedRuns, 0u);
  EXPECT_EQ(Violations, 0u);
}

} // namespace
} // namespace csobj
