//===- tests/baselines_test.cpp - Baseline structures tests --------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "baselines/EliminationBackoffStack.h"
#include "baselines/LockedQueue.h"
#include "baselines/LockedStack.h"
#include "baselines/MichaelScottQueue.h"
#include "baselines/TreiberStack.h"
#include "core/ContentionSensitive.h"
#include "locks/TicketLock.h"
#include "memory/IndexPool.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// IndexPool
//===----------------------------------------------------------------------===

TEST(IndexPoolTest, HandsOutAllIndicesOnce) {
  IndexPool Pool(8);
  std::vector<bool> Seen(8, false);
  for (int I = 0; I < 8; ++I) {
    const auto Idx = Pool.tryAcquire();
    ASSERT_TRUE(Idx.has_value());
    ASSERT_LT(*Idx, 8u);
    ASSERT_FALSE(Seen[*Idx]);
    Seen[*Idx] = true;
  }
  EXPECT_FALSE(Pool.tryAcquire().has_value());
}

TEST(IndexPoolTest, ReleaseMakesIndexAvailableAgain) {
  IndexPool Pool(2);
  const auto A = Pool.tryAcquire();
  const auto B = Pool.tryAcquire();
  ASSERT_TRUE(A && B);
  EXPECT_FALSE(Pool.tryAcquire().has_value());
  Pool.release(*A);
  const auto C = Pool.tryAcquire();
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(*C, *A);
}

TEST(IndexPoolTest, FreeCountTracksState) {
  IndexPool Pool(5);
  EXPECT_EQ(Pool.freeCountForTesting(), 5u);
  const auto A = Pool.tryAcquire();
  EXPECT_EQ(Pool.freeCountForTesting(), 4u);
  Pool.release(*A);
  EXPECT_EQ(Pool.freeCountForTesting(), 5u);
}

TEST(IndexPoolTest, ConcurrentAcquireReleaseLosesNothing) {
  IndexPool Pool(16);
  constexpr int Threads = 4;
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&] {
      SplitMix64 Rng(T + 1);
      Barrier.arriveAndWait();
      for (int I = 0; I < 5000; ++I) {
        const auto Idx = Pool.tryAcquire();
        if (Idx)
          Pool.release(*Idx);
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Pool.freeCountForTesting(), 16u);
}

//===----------------------------------------------------------------------===
// Treiber stack
//===----------------------------------------------------------------------===

TEST(TreiberStackTest, SequentialLifo) {
  TreiberStack Stack(8);
  EXPECT_TRUE(Stack.pop().isEmpty());
  EXPECT_EQ(Stack.push(1), PushResult::Done);
  EXPECT_EQ(Stack.push(2), PushResult::Done);
  auto R = Stack.pop();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 2u);
  R = Stack.pop();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 1u);
  EXPECT_TRUE(Stack.pop().isEmpty());
}

TEST(TreiberStackTest, FullWhenPoolExhausted) {
  TreiberStack Stack(3);
  EXPECT_EQ(Stack.push(1), PushResult::Done);
  EXPECT_EQ(Stack.push(2), PushResult::Done);
  EXPECT_EQ(Stack.push(3), PushResult::Done);
  EXPECT_EQ(Stack.push(4), PushResult::Full);
  (void)Stack.pop();
  EXPECT_EQ(Stack.push(5), PushResult::Done);
}

TEST(TreiberStackTest, SingleAttemptOpsBehaveAbortably) {
  TreiberStack Stack(4);
  // Solo: single attempts always succeed (obstruction-freedom analogue).
  EXPECT_EQ(Stack.tryPushOnce(9), PushResult::Done);
  const auto R = Stack.tryPopOnce();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 9u);
  EXPECT_TRUE(Stack.tryPopOnce().isEmpty());
}

TEST(TreiberStackTest, ConcurrentMixedOpsConserveValues) {
  TreiberStack Stack(256);
  constexpr int Threads = 4;
  SpinBarrier Barrier(Threads);
  std::vector<std::int64_t> Net(Threads, 0);
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T + 5);
      Barrier.arriveAndWait();
      for (int I = 0; I < 4000; ++I) {
        if (Rng.chance(1, 2)) {
          if (Stack.push(static_cast<std::uint32_t>(Rng.below(1u << 20))) ==
              PushResult::Done)
            ++Net[T];
        } else if (Stack.pop().isValue()) {
          --Net[T];
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  const std::int64_t Total =
      std::accumulate(Net.begin(), Net.end(), std::int64_t{0});
  ASSERT_GE(Total, 0);
  EXPECT_EQ(Stack.sizeForTesting(), static_cast<std::uint32_t>(Total));
}

TEST(TreiberStackTest, WrappableByFigure3Skeleton) {
  // The single-attempt operations make Treiber an abortable object, so
  // the paper's generic construction applies to it unchanged.
  TreiberStack Stack(16);
  ContentionSensitive<TasLock> Skeleton(2);
  const PushResult R = Skeleton.strongApply(
      0, [&]() -> std::optional<PushResult> {
        const PushResult Res = Stack.tryPushOnce(5);
        if (Res == PushResult::Abort)
          return std::nullopt;
        return Res;
      });
  EXPECT_EQ(R, PushResult::Done);
  EXPECT_EQ(Stack.sizeForTesting(), 1u);
}

//===----------------------------------------------------------------------===
// Elimination-backoff stack
//===----------------------------------------------------------------------===

TEST(EliminationStackTest, SequentialLifo) {
  EliminationBackoffStack Stack(8);
  EXPECT_TRUE(Stack.pop().isEmpty());
  EXPECT_EQ(Stack.push(1), PushResult::Done);
  EXPECT_EQ(Stack.push(2), PushResult::Done);
  auto R = Stack.pop();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 2u);
}

TEST(EliminationStackTest, ConcurrentPushersAndPoppersConserveSum) {
  EliminationBackoffStack Stack(4096, /*SlotCount=*/2, /*SpinBudget=*/128);
  constexpr int Pairs = 2;
  constexpr int PerThread = 5000;
  SpinBarrier Barrier(2 * Pairs);
  std::vector<std::uint64_t> Pushed(Pairs, 0), Popped(Pairs, 0);
  std::vector<std::uint64_t> PopCount(Pairs, 0);
  std::vector<std::thread> Workers;
  for (int P = 0; P < Pairs; ++P) {
    Workers.emplace_back([&, P] {
      SplitMix64 Rng(P + 21);
      Barrier.arriveAndWait();
      for (int I = 0; I < PerThread; ++I) {
        const auto V = static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1;
        if (Stack.push(V) == PushResult::Done)
          Pushed[P] += V;
      }
    });
    Workers.emplace_back([&, P] {
      Barrier.arriveAndWait();
      for (int I = 0; I < PerThread; ++I) {
        const auto R = Stack.pop();
        if (R.isValue()) {
          Popped[P] += R.value();
          ++PopCount[P];
        }
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  // Drain the remainder and check conservation of the value sum.
  std::uint64_t Remaining = 0;
  while (true) {
    const auto R = Stack.pop();
    if (!R.isValue())
      break;
    Remaining += R.value();
  }
  const std::uint64_t In =
      std::accumulate(Pushed.begin(), Pushed.end(), std::uint64_t{0});
  const std::uint64_t Out =
      std::accumulate(Popped.begin(), Popped.end(), std::uint64_t{0}) +
      Remaining;
  EXPECT_EQ(In, Out);
}

//===----------------------------------------------------------------------===
// Locked stack / queue
//===----------------------------------------------------------------------===

TEST(LockedStackTest, SequentialSemantics) {
  LockedStack<> Stack(2, 3);
  EXPECT_EQ(Stack.push(0, 1), PushResult::Done);
  EXPECT_EQ(Stack.push(0, 2), PushResult::Done);
  EXPECT_EQ(Stack.push(1, 3), PushResult::Done);
  EXPECT_EQ(Stack.push(1, 4), PushResult::Full);
  auto R = Stack.pop(0);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 3u);
}

TEST(LockedStackTest, ConcurrentCountsBalance) {
  constexpr std::uint32_t Threads = 4;
  LockedStack<TicketLock> Stack(Threads, 10000);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (int I = 0; I < 1000; ++I) {
        ASSERT_EQ(Stack.push(T, T + 1), PushResult::Done);
        ASSERT_TRUE(Stack.pop(T).isValue());
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Stack.sizeForTesting(), 0u);
}

TEST(LockedQueueTest, SequentialFifoAndWrap) {
  LockedQueue<> Queue(1, 3);
  EXPECT_EQ(Queue.enqueue(0, 1), PushResult::Done);
  EXPECT_EQ(Queue.enqueue(0, 2), PushResult::Done);
  EXPECT_EQ(Queue.enqueue(0, 3), PushResult::Done);
  EXPECT_EQ(Queue.enqueue(0, 4), PushResult::Full);
  for (std::uint32_t V = 1; V <= 3; ++V) {
    const auto R = Queue.dequeue(0);
    ASSERT_TRUE(R.isValue());
    EXPECT_EQ(R.value(), V);
  }
  EXPECT_TRUE(Queue.dequeue(0).isEmpty());
  // Wrap the ring several times.
  for (std::uint32_t V = 10; V < 20; ++V) {
    ASSERT_EQ(Queue.enqueue(0, V), PushResult::Done);
    const auto R = Queue.dequeue(0);
    ASSERT_TRUE(R.isValue());
    EXPECT_EQ(R.value(), V);
  }
}

//===----------------------------------------------------------------------===
// Michael-Scott queue
//===----------------------------------------------------------------------===

TEST(MichaelScottQueueTest, SequentialFifo) {
  MichaelScottQueue Queue(8);
  EXPECT_TRUE(Queue.dequeue().isEmpty());
  for (std::uint32_t V = 1; V <= 5; ++V)
    EXPECT_EQ(Queue.enqueue(V), PushResult::Done);
  for (std::uint32_t V = 1; V <= 5; ++V) {
    const auto R = Queue.dequeue();
    ASSERT_TRUE(R.isValue());
    EXPECT_EQ(R.value(), V);
  }
  EXPECT_TRUE(Queue.dequeue().isEmpty());
}

TEST(MichaelScottQueueTest, FullWhenPoolExhausted) {
  MichaelScottQueue Queue(2);
  EXPECT_EQ(Queue.enqueue(1), PushResult::Done);
  EXPECT_EQ(Queue.enqueue(2), PushResult::Done);
  EXPECT_EQ(Queue.enqueue(3), PushResult::Full);
  (void)Queue.dequeue();
  EXPECT_EQ(Queue.enqueue(4), PushResult::Done);
}

TEST(MichaelScottQueueTest, NodeRecyclingSurvivesManyWraps) {
  MichaelScottQueue Queue(3);
  for (std::uint32_t I = 0; I < 10000; ++I) {
    ASSERT_EQ(Queue.enqueue(I + 1), PushResult::Done);
    const auto R = Queue.dequeue();
    ASSERT_TRUE(R.isValue());
    ASSERT_EQ(R.value(), I + 1);
  }
  EXPECT_EQ(Queue.sizeForTesting(), 0u);
}

TEST(MichaelScottQueueTest, ConcurrentProducersConsumersConserveSum) {
  MichaelScottQueue Queue(1024);
  constexpr int Producers = 2, Consumers = 2;
  constexpr std::uint32_t PerProducer = 8000;
  SpinBarrier Barrier(Producers + Consumers);
  std::vector<std::uint64_t> SumIn(Producers, 0);
  std::vector<std::uint64_t> SumOut(Consumers, 0);
  std::atomic<std::uint32_t> Consumed{0};
  std::vector<std::thread> Workers;
  for (int P = 0; P < Producers; ++P)
    Workers.emplace_back([&, P] {
      SplitMix64 Rng(P + 31);
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerProducer; ++I) {
        const auto V = static_cast<std::uint32_t>(Rng.below(1u << 20)) + 1;
        while (Queue.enqueue(V) != PushResult::Done) {
        }
        SumIn[P] += V;
      }
    });
  for (int C = 0; C < Consumers; ++C)
    Workers.emplace_back([&, C] {
      Barrier.arriveAndWait();
      while (Consumed.load() < Producers * PerProducer) {
        const auto R = Queue.dequeue();
        if (R.isValue()) {
          SumOut[C] += R.value();
          Consumed.fetch_add(1);
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(
      std::accumulate(SumIn.begin(), SumIn.end(), std::uint64_t{0}),
      std::accumulate(SumOut.begin(), SumOut.end(), std::uint64_t{0}));
  EXPECT_EQ(Queue.sizeForTesting(), 0u);
}

} // namespace
} // namespace csobj
