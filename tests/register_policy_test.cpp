//===- tests/register_policy_test.cpp - Instrumented vs Fast -------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-policy contract:
///
///  * Instrumented is the library default and keeps the paper's
///    access-count oracle exact — the six-access strong push is pinned
///    here including its read/C&S breakdown, so a future ordering or
///    layout change that sneaks in an extra shared access fails loudly.
///  * Fast must be observationally identical except that it is invisible
///    to the instrumentation channels: same values, same C&S semantics,
///    zero counted accesses.
///
//===----------------------------------------------------------------------===//

#include "core/AbortableStack.h"
#include "core/ContentionSensitiveStack.h"
#include "core/NonBlockingStack.h"
#include "locks/TasLock.h"
#include "memory/AccessCounter.h"
#include "memory/AtomicRegister.h"
#include "memory/RegisterPolicy.h"

#include <gtest/gtest.h>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// Policy identity
//===----------------------------------------------------------------------===

TEST(RegisterPolicyTest, PolicyNames) {
  EXPECT_STREQ(Instrumented::Name, "instrumented");
  EXPECT_STREQ(Fast::Name, "fast");
}

TEST(RegisterPolicyTest, TestBinariesDefaultToInstrumented) {
  // tests/CMakeLists.txt pins CSOBJ_FORCE_INSTRUMENTED_DEFAULT: the
  // suite's oracles live on the instrumented substrate regardless of
  // the CSOBJ_FAST_REGISTERS build setting.
  static_assert(std::is_same_v<DefaultRegisterPolicy, Instrumented>);
  static_assert(
      std::is_same_v<AtomicRegister<int>::RegisterPolicy, Instrumented>);
}

//===----------------------------------------------------------------------===
// The six-access regression pin (paper Theorem 1 + Figure 1 analysis)
//===----------------------------------------------------------------------===

TEST(RegisterPolicyTest, InstrumentedStrongPushBreakdownIsExactlySix) {
  // Contention-free strong push = 1 CONTENTION read + the weak push's
  // five accesses (read TOP, read STACK[i], C&S STACK[i], read
  // STACK[i+1], C&S TOP). Pinning the per-kind breakdown — not just the
  // total — catches a change that trades a read for a C&S.
  ContentionSensitiveStack<Compact64, TasLockT<Instrumented>, NoBackoff,
                           Instrumented>
      Stack(/*NumThreads=*/2, /*Capacity=*/8);
  const AccessCounts Counts = countAccesses(
      [&] { EXPECT_EQ(Stack.push(/*Tid=*/0, 42), PushResult::Done); });
  EXPECT_EQ(Counts.total(), 6u);
  EXPECT_EQ(Counts.Reads, 4u);       // CONTENTION + TOP + 2 slot reads.
  EXPECT_EQ(Counts.CasAttempts, 2u); // help C&S + TOP C&S.
  EXPECT_EQ(Counts.Writes, 0u);
  EXPECT_EQ(Counts.Rmw, 0u);
  EXPECT_EQ(Counts.CasFailures, 0u); // Uncontended: every C&S lands.
}

TEST(RegisterPolicyTest, InstrumentedStrongPopBreakdownIsExactlySix) {
  ContentionSensitiveStack<Compact64, TasLockT<Instrumented>, NoBackoff,
                           Instrumented>
      Stack(/*NumThreads=*/2, /*Capacity=*/8);
  ASSERT_EQ(Stack.push(0, 42), PushResult::Done);
  const AccessCounts Counts = countAccesses([&] {
    const auto Res = Stack.pop(/*Tid=*/1);
    ASSERT_TRUE(Res.isValue());
    EXPECT_EQ(Res.value(), 42u);
  });
  EXPECT_EQ(Counts.total(), 6u);
  EXPECT_EQ(Counts.Reads, 4u);
  EXPECT_EQ(Counts.CasAttempts, 2u);
}

//===----------------------------------------------------------------------===
// Fast is invisible to instrumentation
//===----------------------------------------------------------------------===

TEST(RegisterPolicyTest, FastRegisterCountsNothing) {
  AtomicRegister<std::uint32_t, Fast> Reg(1);
  const AccessCounts Counts = countAccesses([&] {
    EXPECT_EQ(Reg.read(), 1u);
    Reg.write(2);
    EXPECT_TRUE(Reg.compareAndSwap(2, 3));
    EXPECT_FALSE(Reg.compareAndSwap(2, 4));
    EXPECT_EQ(Reg.exchange(5), 3u);
    EXPECT_EQ(Reg.fetchAdd(1), 5u);
  });
  EXPECT_EQ(Counts.total(), 0u);
  EXPECT_EQ(Counts.CasFailures, 0u);
}

TEST(RegisterPolicyTest, FastStackOperationsCountNothing) {
  AbortableStack<Compact64, Fast> Stack(8);
  NonBlockingStack<Compact64, NoBackoff, Fast> NbStack(8);
  const AccessCounts Counts = countAccesses([&] {
    EXPECT_EQ(Stack.weakPush(7), PushResult::Done);
    EXPECT_TRUE(Stack.weakPop().isValue());
    EXPECT_EQ(NbStack.push(9), PushResult::Done);
    EXPECT_TRUE(NbStack.pop().isValue());
  });
  EXPECT_EQ(Counts.total(), 0u);
}

//===----------------------------------------------------------------------===
// Fast semantics match Instrumented semantics
//===----------------------------------------------------------------------===

template <typename Policy> void registerRoundTrip() {
  AtomicRegister<std::uint64_t, Policy> Reg(10);
  EXPECT_EQ(Reg.read(), 10u);
  Reg.write(20, std::memory_order_release);
  EXPECT_EQ(Reg.read(std::memory_order_acquire), 20u);
  // acq_rel C&S exercises failOrderFor (a failed acq_rel C&S must demote
  // to acquire; this would abort at runtime if the failure order were
  // passed through unmodified).
  EXPECT_FALSE(Reg.compareAndSwap(99, 30, std::memory_order_acq_rel));
  EXPECT_TRUE(Reg.compareAndSwap(20, 30, std::memory_order_acq_rel));
  std::uint64_t Witness = 0;
  EXPECT_FALSE(Reg.compareAndSwapValue(Witness, 40,
                                       std::memory_order_release));
  EXPECT_EQ(Witness, 30u); // Failure reports the current value.
  EXPECT_TRUE(Reg.compareAndSwapValue(Witness, 40));
  EXPECT_EQ(Reg.peekForTesting(), 40u);
  EXPECT_EQ(Reg.exchange(50), 40u);
  EXPECT_EQ(Reg.fetchAdd(5), 50u);
  EXPECT_EQ(Reg.read(), 55u);
}

TEST(RegisterPolicyTest, InstrumentedRegisterSemantics) {
  registerRoundTrip<Instrumented>();
}

TEST(RegisterPolicyTest, FastRegisterSemantics) {
  registerRoundTrip<Fast>();
}

TEST(RegisterPolicyTest, FastStackSequentialSemantics) {
  AbortableStack<Compact64, Fast> Stack(2);
  EXPECT_EQ(Stack.weakPush(1), PushResult::Done);
  EXPECT_EQ(Stack.weakPush(2), PushResult::Done);
  EXPECT_EQ(Stack.weakPush(3), PushResult::Full);
  auto Res = Stack.weakPop();
  ASSERT_TRUE(Res.isValue());
  EXPECT_EQ(Res.value(), 2u);
  Res = Stack.weakPop();
  ASSERT_TRUE(Res.isValue());
  EXPECT_EQ(Res.value(), 1u);
  EXPECT_TRUE(Stack.weakPop().isEmpty());
}

TEST(RegisterPolicyTest, FastCsStackSequentialSemantics) {
  ContentionSensitiveStack<Compact64, TasLockT<Fast>, NoBackoff, Fast>
      Stack(/*NumThreads=*/2, /*Capacity=*/4);
  EXPECT_EQ(Stack.push(0, 11), PushResult::Done);
  EXPECT_EQ(Stack.push(1, 22), PushResult::Done);
  auto Res = Stack.pop(0);
  ASSERT_TRUE(Res.isValue());
  EXPECT_EQ(Res.value(), 22u);
  Res = Stack.pop(1);
  ASSERT_TRUE(Res.isValue());
  EXPECT_EQ(Res.value(), 11u);
  EXPECT_TRUE(Stack.pop(0).isEmpty());
}

} // namespace
} // namespace csobj
