//===- tests/deque_test.cpp - HLM deque (ref [8]) tests ------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "core/ContentionSensitiveDeque.h"
#include "core/ObstructionFreeDeque.h"
#include "lincheck/Checker.h"
#include "lincheck/Spec.h"
#include "runtime/SpinBarrier.h"
#include "sched/Explorer.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// Sequential semantics (solo: single attempts never abort)
//===----------------------------------------------------------------------===

TEST(HlmDequeTest, InitiallyEmptyBothEnds) {
  ObstructionFreeDeque Deque(4);
  EXPECT_TRUE(Deque.tryPopLeft().isEmpty());
  EXPECT_TRUE(Deque.tryPopRight().isEmpty());
  EXPECT_EQ(Deque.sizeForTesting(), 0u);
}

TEST(HlmDequeTest, RightPushRightPopLifo) {
  ObstructionFreeDeque Deque(4, /*InitialLeftSlots=*/1);
  EXPECT_EQ(Deque.tryPushRight(1), PushResult::Done);
  EXPECT_EQ(Deque.tryPushRight(2), PushResult::Done);
  auto R = Deque.tryPopRight();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 2u);
  R = Deque.tryPopRight();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 1u);
  EXPECT_TRUE(Deque.tryPopRight().isEmpty());
}

TEST(HlmDequeTest, LeftPushRightPopFifo) {
  ObstructionFreeDeque Deque(4, /*InitialLeftSlots=*/3);
  EXPECT_EQ(Deque.tryPushLeft(1), PushResult::Done);
  EXPECT_EQ(Deque.tryPushLeft(2), PushResult::Done);
  // Right pop takes the oldest left push first.
  auto R = Deque.tryPopRight();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 1u);
  R = Deque.tryPopLeft();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 2u);
}

TEST(HlmDequeTest, PerEndFullSemantics) {
  // Capacity 4, 2 left slots and 2 right slots.
  ObstructionFreeDeque Deque(4, /*InitialLeftSlots=*/2);
  EXPECT_EQ(Deque.tryPushLeft(1), PushResult::Done);
  EXPECT_EQ(Deque.tryPushLeft(2), PushResult::Done);
  EXPECT_EQ(Deque.tryPushLeft(3), PushResult::Full); // Left exhausted.
  EXPECT_EQ(Deque.tryPushRight(4), PushResult::Done);
  EXPECT_EQ(Deque.tryPushRight(5), PushResult::Done);
  EXPECT_EQ(Deque.tryPushRight(6), PushResult::Full); // Right exhausted.
  EXPECT_EQ(Deque.sizeForTesting(), 4u);
  // Popping an end frees that end again.
  ASSERT_TRUE(Deque.tryPopLeft().isValue());
  EXPECT_EQ(Deque.tryPushLeft(7), PushResult::Done);
}

TEST(HlmDequeTest, ObstructionFreeWrappersMatchAttempts) {
  ObstructionFreeDeque Deque(4, 2);
  EXPECT_EQ(Deque.pushLeft(10), PushResult::Done);
  EXPECT_EQ(Deque.pushRight(20), PushResult::Done);
  auto L = Deque.popLeft();
  ASSERT_TRUE(L.isValue());
  EXPECT_EQ(L.value(), 10u);
  auto R = Deque.popRight();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 20u);
}

TEST(HlmDequeTest, SoloAttemptsNeverAbort) {
  ObstructionFreeDeque Deque(16, 8);
  SplitMix64 Rng(404);
  for (int I = 0; I < 4000; ++I) {
    const auto V = static_cast<std::uint32_t>(Rng.below(1u << 20));
    switch (Rng.below(4)) {
    case 0:
      ASSERT_NE(Deque.tryPushLeft(V), PushResult::Abort);
      break;
    case 1:
      ASSERT_NE(Deque.tryPushRight(V), PushResult::Abort);
      break;
    case 2:
      ASSERT_FALSE(Deque.tryPopLeft().isAbort());
      break;
    default:
      ASSERT_FALSE(Deque.tryPopRight().isAbort());
      break;
    }
  }
}

//===----------------------------------------------------------------------===
// Sequential model equivalence against LinearDequeSpec
//===----------------------------------------------------------------------===

class DequeModelProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> {};

TEST_P(DequeModelProperty, MatchesPositionalModel) {
  const auto [Capacity, LeftSlots, Seed] = GetParam();
  if (LeftSlots > Capacity)
    GTEST_SKIP() << "invalid combination";
  ObstructionFreeDeque Deque(Capacity, LeftSlots);
  // Model: contents plus per-end free counts, as in LinearDequeSpec.
  std::deque<std::uint32_t> Model;
  std::uint32_t LeftFree = LeftSlots;
  SplitMix64 Rng(Seed);
  for (int I = 0; I < 4000; ++I) {
    const auto V = static_cast<std::uint32_t>(Rng.below(1u << 20));
    const std::uint32_t RightFree =
        Capacity - static_cast<std::uint32_t>(Model.size()) - LeftFree;
    switch (Rng.below(4)) {
    case 0: {
      const PushResult R = Deque.tryPushLeft(V);
      if (LeftFree > 0) {
        ASSERT_EQ(R, PushResult::Done);
        Model.push_front(V);
        --LeftFree;
      } else {
        ASSERT_EQ(R, PushResult::Full);
      }
      break;
    }
    case 1: {
      const PushResult R = Deque.tryPushRight(V);
      if (RightFree > 0) {
        ASSERT_EQ(R, PushResult::Done);
        Model.push_back(V);
      } else {
        ASSERT_EQ(R, PushResult::Full);
      }
      break;
    }
    case 2: {
      const auto R = Deque.tryPopLeft();
      if (Model.empty()) {
        ASSERT_TRUE(R.isEmpty());
      } else {
        ASSERT_TRUE(R.isValue());
        ASSERT_EQ(R.value(), Model.front());
        Model.pop_front();
        ++LeftFree;
      }
      break;
    }
    default: {
      const auto R = Deque.tryPopRight();
      if (Model.empty()) {
        ASSERT_TRUE(R.isEmpty());
      } else {
        ASSERT_TRUE(R.isValue());
        ASSERT_EQ(R.value(), Model.back());
        Model.pop_back();
      }
      break;
    }
    }
  }
  ASSERT_EQ(Deque.sizeForTesting(), Model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DequeModelProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 5u, 32u),
                       ::testing::Values(0u, 1u, 2u),
                       ::testing::Values(7u, 1234u)));

//===----------------------------------------------------------------------===
// Linearizability oracle over concurrent runs
//===----------------------------------------------------------------------===

TEST(HlmDequeLincheck, ConcurrentHistoriesLinearize) {
  constexpr std::uint32_t Capacity = 4, LeftSlots = 2;
  for (std::uint32_t Round = 0; Round < 40; ++Round) {
    auto Deque = std::make_unique<ObstructionFreeDeque>(Capacity, LeftSlots);
    std::vector<HistoryRecorder> Recorders;
    for (std::uint32_t T = 0; T < 3; ++T)
      Recorders.emplace_back(T);
    SpinBarrier Barrier(3);
    std::vector<std::thread> Workers;
    for (std::uint32_t T = 0; T < 3; ++T)
      Workers.emplace_back([&, T] {
        SplitMix64 Rng(Round * 97 + T);
        Barrier.arriveAndWait();
        for (int I = 0; I < 6; ++I) {
          const auto V =
              static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1;
          const auto T0 = HistoryRecorder::now();
          switch (Rng.below(4)) {
          case 0: {
            const PushResult R = Deque->tryPushLeft(V);
            if (R != PushResult::Abort)
              Recorders[T].recordOp(OpCode::PushLeft, V,
                                    R == PushResult::Full ? ResCode::Full
                                                          : ResCode::Done,
                                    0, T0, HistoryRecorder::now());
            break;
          }
          case 1: {
            const PushResult R = Deque->tryPushRight(V);
            if (R != PushResult::Abort)
              Recorders[T].recordOp(OpCode::PushRight, V,
                                    R == PushResult::Full ? ResCode::Full
                                                          : ResCode::Done,
                                    0, T0, HistoryRecorder::now());
            break;
          }
          case 2: {
            const auto R = Deque->tryPopLeft();
            if (R.isValue())
              Recorders[T].recordOp(OpCode::PopLeft, 0, ResCode::Value,
                                    R.value(), T0, HistoryRecorder::now());
            else if (R.isEmpty())
              Recorders[T].recordOp(OpCode::PopLeft, 0, ResCode::Empty, 0,
                                    T0, HistoryRecorder::now());
            break;
          }
          default: {
            const auto R = Deque->tryPopRight();
            if (R.isValue())
              Recorders[T].recordOp(OpCode::PopRight, 0, ResCode::Value,
                                    R.value(), T0, HistoryRecorder::now());
            else if (R.isEmpty())
              Recorders[T].recordOp(OpCode::PopRight, 0, ResCode::Empty, 0,
                                    T0, HistoryRecorder::now());
            break;
          }
          }
        }
      });
    for (auto &W : Workers)
      W.join();
    const History H = mergeHistories(Recorders);
    const CheckResult Result =
        checkLinearizable(H, LinearDequeSpec(Capacity, LeftSlots));
    ASSERT_FALSE(Result.HitSearchCap);
    ASSERT_TRUE(Result.Linearizable) << Result.FailureNote;
  }
}

//===----------------------------------------------------------------------===
// Exhaustive interleaving: both-end races on the same element
//===----------------------------------------------------------------------===

TEST(HlmDequeExhaustive, PopLeftVsPopRightOnSingleElement) {
  // One element; a left pop races a right pop. In every interleaving at
  // most one wins the value, the other sees empty or aborts, and the
  // deque ends consistent.
  ScheduleExplorer Explorer;
  std::uint64_t Violations = 0;
  const ExploreResult Result = Explorer.exploreAll([&] {
    auto Deque = std::make_shared<ObstructionFreeDeque>(3, 1);
    EXPECT_EQ(Deque->tryPushRight(7), PushResult::Done);
    auto L = std::make_shared<PopResult<std::uint32_t>>(
        PopResult<std::uint32_t>::abort());
    auto R = std::make_shared<PopResult<std::uint32_t>>(
        PopResult<std::uint32_t>::abort());
    ScenarioRun Run;
    Run.Bodies.push_back([Deque, L] { *L = Deque->tryPopLeft(); });
    Run.Bodies.push_back([Deque, R] { *R = Deque->tryPopRight(); });
    Run.PostCheck = [Deque, L, R, &Violations] {
      const int Winners = L->isValue() + R->isValue();
      if (Winners > 1)
        ++Violations; // The single element was taken twice.
      if (L->isValue() && L->value() != 7)
        ++Violations;
      if (R->isValue() && R->value() != 7)
        ++Violations;
      if (Deque->sizeForTesting() != 1u - static_cast<unsigned>(Winners))
        ++Violations;
      // An "empty" answer is only legal if the element was removed by
      // the other pop (they overlap, so ordering pop-winner first makes
      // it legal) — with one element and two pops, empty plus a win is
      // consistent; empty plus NO win is not.
      if ((L->isEmpty() || R->isEmpty()) && Winners == 0)
        ++Violations;
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Violations, 0u);
  EXPECT_GT(Result.Runs, 20u);
}

TEST(HlmDequeExhaustive, OppositeEndPushesBothSucceedOrAbortCleanly) {
  ScheduleExplorer Explorer;
  std::uint64_t Violations = 0;
  const ExploreResult Result = Explorer.exploreAll([&] {
    auto Deque = std::make_shared<ObstructionFreeDeque>(4, 2);
    auto L = std::make_shared<PushResult>(PushResult::Abort);
    auto R = std::make_shared<PushResult>(PushResult::Abort);
    ScenarioRun Run;
    Run.Bodies.push_back([Deque, L] { *L = Deque->tryPushLeft(1); });
    Run.Bodies.push_back([Deque, R] { *R = Deque->tryPushRight(2); });
    Run.PostCheck = [Deque, L, R, &Violations] {
      const unsigned Dones =
          (*L == PushResult::Done) + (*R == PushResult::Done);
      if (Deque->sizeForTesting() != Dones)
        ++Violations; // An aborted push left a value behind.
      if (*L == PushResult::Full || *R == PushResult::Full)
        ++Violations; // Neither end can be full here.
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Violations, 0u);
}

//===----------------------------------------------------------------------===
// Figure 3 over the deque: starvation-free strong operations
//===----------------------------------------------------------------------===

TEST(CsDequeTest, SequentialSemantics) {
  ContentionSensitiveDeque<> Deque(2, 4, 2);
  EXPECT_EQ(Deque.pushLeft(0, 1), PushResult::Done);
  EXPECT_EQ(Deque.pushRight(1, 2), PushResult::Done);
  auto L = Deque.popLeft(0);
  ASSERT_TRUE(L.isValue());
  EXPECT_EQ(L.value(), 1u);
  auto R = Deque.popRight(1);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 2u);
  EXPECT_TRUE(Deque.popLeft(0).isEmpty());
}

TEST(CsDequeTest, StrongOpsNeverAbortUnderContention) {
  constexpr std::uint32_t Threads = 4;
  ContentionSensitiveDeque<> Deque(Threads, 64, 32);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T + 55);
      Barrier.arriveAndWait();
      for (int I = 0; I < 1500; ++I) {
        const auto V = static_cast<std::uint32_t>(Rng.below(1u << 16));
        switch (Rng.below(4)) {
        case 0:
          ASSERT_NE(Deque.pushLeft(T, V), PushResult::Abort);
          break;
        case 1:
          ASSERT_NE(Deque.pushRight(T, V), PushResult::Abort);
          break;
        case 2:
          ASSERT_FALSE(Deque.popLeft(T).isAbort());
          break;
        default:
          ASSERT_FALSE(Deque.popRight(T).isAbort());
          break;
        }
      }
    });
  for (auto &W : Workers)
    W.join();
}

} // namespace
} // namespace csobj
