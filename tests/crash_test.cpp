//===- tests/crash_test.cpp - Process-crash fault injection --------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 5: "these algorithms still work despite process
/// crashes if no process crashes while holding the lock". The scheduler
/// can crash a controlled thread at *any* shared-access point (the
/// access does not execute; the prefix that ran stays in shared memory),
/// so the claim is tested at every crash point of every operation:
///
///  * Figures 1/2 and the companion queue/deque are lock-free: a process
///    crashing anywhere leaves the object fully usable — the next
///    operation's help completes any published-but-lazy write.
///  * Figure 3's fast path (lines 01-03) holds no lock: crashing there
///    is tolerated.
///  * For the *plain* Figure 3, crashing while competing (FLAG raised)
///    or holding the lock is NOT tolerated — TURN can stick on the
///    crashed process. That is the paper's own caveat.
///  * The crash-tolerant variant (core/CrashTolerant.h) closes that
///    boundary: the sweeps at the bottom of this file crash a slow-path
///    operation at EVERY one of its shared-access points — including
///    flag-raised and lock-holding prefixes — and assert that a survivor
///    always completes, degrading to the lock-free fallback exactly when
///    the corpse held the lease and staying on the starvation-free path
///    otherwise.
///
//===----------------------------------------------------------------------===//

#include "sched/InterleaveScheduler.h"

#include "baselines/MichaelScottQueue.h"
#include "baselines/TreiberStack.h"
#include "core/AbortableQueue.h"
#include "core/AbortableStack.h"
#include "core/ContentionSensitiveStack.h"
#include "core/CrashTolerant.h"
#include "core/CrashTolerantStack.h"
#include "core/ObstructionFreeDeque.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

namespace csobj {
namespace {

/// Runs \p Body under the scheduler, crashing it at its (K+1)-th shared
/// access (K = number of accesses that complete first). Returns the
/// number of decision points taken, so callers can discover the access
/// count by passing a huge K.
std::size_t runAndCrashAt(std::function<void()> Body, std::uint32_t K) {
  InterleaveScheduler Scheduler(1);
  const auto Trace = Scheduler.run(
      {std::move(Body)},
      [K](std::size_t Step, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        if (Step == K)
          return Parked.front() | InterleaveScheduler::KillFlag;
        return Parked.front();
      });
  return Trace.Decisions.size();
}

//===----------------------------------------------------------------------===
// Figure 1: crash at every prefix of weak_push / weak_pop
//===----------------------------------------------------------------------===

TEST(CrashTest, AbortableStackSurvivesPushCrashAtEveryPoint) {
  // weak_push performs 5 accesses; crash before each and after all.
  for (std::uint32_t K = 0; K <= 5; ++K) {
    AbortableStack<> Stack(8);
    ASSERT_EQ(Stack.weakPush(1), PushResult::Done); // Pre-existing state.
    runAndCrashAt([&Stack] { (void)Stack.weakPush(7); }, K);

    // The survivor must be able to operate normally (solo: no aborts).
    ASSERT_EQ(Stack.weakPush(99), PushResult::Done);
    const auto Top = Stack.weakPop();
    ASSERT_TRUE(Top.isValue());
    ASSERT_EQ(Top.value(), 99u);
    // Next value is 7 iff the crashed push reached its TOP C&S (the
    // 5th access) — all-or-nothing, never a corrupted in-between.
    const auto Second = Stack.weakPop();
    ASSERT_TRUE(Second.isValue());
    if (K >= 5) {
      ASSERT_EQ(Second.value(), 7u);
      const auto Third = Stack.weakPop();
      ASSERT_TRUE(Third.isValue());
      ASSERT_EQ(Third.value(), 1u);
    } else {
      ASSERT_EQ(Second.value(), 1u);
    }
    ASSERT_TRUE(Stack.weakPop().isEmpty());
  }
}

TEST(CrashTest, AbortableStackSurvivesPopCrashAtEveryPoint) {
  for (std::uint32_t K = 0; K <= 5; ++K) {
    AbortableStack<> Stack(8);
    ASSERT_EQ(Stack.weakPush(1), PushResult::Done);
    ASSERT_EQ(Stack.weakPush(2), PushResult::Done);
    runAndCrashAt([&Stack] { (void)Stack.weakPop(); }, K);

    // Either the pop took effect (2 gone) or it did not — drain checks.
    std::vector<std::uint32_t> Drained;
    while (true) {
      const auto R = Stack.weakPop();
      if (!R.isValue())
        break;
      Drained.push_back(R.value());
    }
    if (K >= 5)
      ASSERT_EQ(Drained, (std::vector<std::uint32_t>{1}));
    else
      ASSERT_EQ(Drained, (std::vector<std::uint32_t>{2, 1}));
  }
}

//===----------------------------------------------------------------------===
// Queue and deque: crash at every prefix
//===----------------------------------------------------------------------===

TEST(CrashTest, AbortableQueueSurvivesEnqueueCrashAtEveryPoint) {
  for (std::uint32_t K = 0; K <= 6; ++K) {
    AbortableQueue<> Queue(8);
    ASSERT_EQ(Queue.weakEnqueue(1), PushResult::Done);
    runAndCrashAt([&Queue] { (void)Queue.weakEnqueue(7); }, K);

    ASSERT_EQ(Queue.weakEnqueue(99), PushResult::Done);
    std::vector<std::uint32_t> Drained;
    while (true) {
      const auto R = Queue.weakDequeue();
      if (!R.isValue())
        break;
      Drained.push_back(R.value());
    }
    if (K >= 6)
      ASSERT_EQ(Drained, (std::vector<std::uint32_t>{1, 7, 99}));
    else
      ASSERT_EQ(Drained, (std::vector<std::uint32_t>{1, 99}));
  }
}

TEST(CrashTest, AbortableQueueSurvivesDequeueCrashAtEveryPoint) {
  for (std::uint32_t K = 0; K <= 6; ++K) {
    AbortableQueue<> Queue(8);
    ASSERT_EQ(Queue.weakEnqueue(1), PushResult::Done);
    ASSERT_EQ(Queue.weakEnqueue(2), PushResult::Done);
    runAndCrashAt([&Queue] { (void)Queue.weakDequeue(); }, K);

    std::vector<std::uint32_t> Drained;
    while (true) {
      const auto R = Queue.weakDequeue();
      if (!R.isValue())
        break;
      Drained.push_back(R.value());
    }
    if (K >= 6)
      ASSERT_EQ(Drained, (std::vector<std::uint32_t>{2}));
    else
      ASSERT_EQ(Drained, (std::vector<std::uint32_t>{1, 2}));
  }
}

TEST(CrashTest, HlmDequeSurvivesPushCrashBetweenItsTwoCas) {
  // The HLM push fences a neighbour (CAS 1) before installing the value
  // (CAS 2); crashing between the two must leave only a harmless
  // counter bump. Sweep every prefix; the op's access count depends on
  // the oracle scan, so discover it first.
  ObstructionFreeDeque Probe(4, 2);
  const std::size_t Accesses =
      runAndCrashAt([&Probe] { (void)Probe.tryPushRight(7); }, 1000);
  ASSERT_GT(Accesses, 2u);

  for (std::uint32_t K = 0; K <= Accesses; ++K) {
    ObstructionFreeDeque Deque(4, 2);
    runAndCrashAt([&Deque] { (void)Deque.tryPushRight(7); }, K);
    // Survivor: solo ops never abort, state is all-or-nothing.
    const std::uint32_t Size = Deque.sizeForTesting();
    ASSERT_LE(Size, 1u);
    ASSERT_EQ(Deque.tryPushLeft(5), PushResult::Done);
    ASSERT_EQ(Deque.tryPushRight(6), PushResult::Done);
    const auto R = Deque.tryPopRight();
    ASSERT_TRUE(R.isValue());
    ASSERT_EQ(R.value(), 6u);
  }
}

//===----------------------------------------------------------------------===
// Lock-free baselines
//===----------------------------------------------------------------------===

TEST(CrashTest, TreiberSurvivesPushCrashAtEveryPoint) {
  // A crash can strand the node the crashed push had acquired (bounded
  // leak of one slot — inherent to crashes with a free list) but the
  // structure itself must stay consistent.
  for (std::uint32_t K = 0; K <= 8; ++K) {
    TreiberStack Stack(4);
    ASSERT_EQ(Stack.push(1), PushResult::Done);
    runAndCrashAt([&Stack] { (void)Stack.push(7); }, K);

    ASSERT_EQ(Stack.push(99), PushResult::Done);
    std::vector<std::uint32_t> Drained;
    while (true) {
      const auto R = Stack.pop();
      if (!R.isValue())
        break;
      Drained.push_back(R.value());
    }
    ASSERT_GE(Drained.size(), 2u);
    ASSERT_EQ(Drained.front(), 99u);
    ASSERT_EQ(Drained.back(), 1u);
  }
}

TEST(CrashTest, MichaelScottSurvivesEnqueueCrashAtEveryPoint) {
  // Includes the classic window: crash after linking the node but
  // before swinging the tail — the next operation must help.
  for (std::uint32_t K = 0; K <= 10; ++K) {
    MichaelScottQueue Queue(4);
    ASSERT_EQ(Queue.enqueue(1), PushResult::Done);
    runAndCrashAt([&Queue] { (void)Queue.enqueue(7); }, K);

    ASSERT_EQ(Queue.enqueue(99), PushResult::Done);
    std::vector<std::uint32_t> Drained;
    while (true) {
      const auto R = Queue.dequeue();
      if (!R.isValue())
        break;
      Drained.push_back(R.value());
    }
    ASSERT_GE(Drained.size(), 2u);
    ASSERT_EQ(Drained.front(), 1u);
    ASSERT_EQ(Drained.back(), 99u);
  }
}

//===----------------------------------------------------------------------===
// Figure 3: crash on the lock-free fast path is tolerated
//===----------------------------------------------------------------------===

TEST(CrashTest, Figure3SurvivesFastPathCrash) {
  // The fast path is lines 01-03: one CONTENTION read + one weak
  // attempt (6 accesses total when it succeeds). Crashing anywhere in
  // it leaves no lock held and no flag raised.
  for (std::uint32_t K = 0; K <= 6; ++K) {
    ContentionSensitiveStack<> Stack(2, 8);
    runAndCrashAt([&Stack] { (void)Stack.push(0, 7); }, K);

    // The survivor (different process id) proceeds unhindered.
    ASSERT_EQ(Stack.push(1, 99), PushResult::Done);
    const auto R = Stack.pop(1);
    ASSERT_TRUE(R.isValue());
    ASSERT_EQ(R.value(), 99u);
    ASSERT_FALSE(Stack.skeleton().contentionForTesting());
  }
}

//===----------------------------------------------------------------------===
// Crash-tolerant Figure 3: crash the slow path at EVERY access point
//===----------------------------------------------------------------------===

/// Weak push whose first attempt reports bottom without touching shared
/// memory — a zero-cost deterministic detour onto the slow path, so the
/// sweep covers every doorway / lock / protected-retry access.
auto forcedSlowPush(AbortableStack<> &Stack, std::uint32_t V) {
  return [&Stack, V, Attempts = 0]() mutable -> std::optional<PushResult> {
    if (Attempts++ == 0)
      return std::nullopt;
    const PushResult R = Stack.weakPush(V);
    if (R == PushResult::Abort)
      return std::nullopt;
    return R;
  };
}

TEST(CrashTest, CrashTolerantSlowPathSurvivesCrashAtEveryPoint) {
  // Discover the slow-path access count: a full forced-slow strongApply
  // covers line 01, the doorway (04-05), the leased lock (06), the
  // protected retry (07-09), the doorway exit (10-11) and unlock (12).
  std::size_t Accesses = 0;
  {
    CrashTolerantContentionSensitive<> Probe(2, /*Patience=*/8);
    AbortableStack<> Stack(8);
    Accesses = runAndCrashAt(
        [&] { (void)Probe.strongApply(0, forcedSlowPush(Stack, 7)); },
        100000);
  }
  ASSERT_GT(Accesses, 10u); // Sanity: the slow path is well past 6.

  for (std::uint32_t K = 0; K < Accesses; ++K) {
    CrashTolerantContentionSensitive<> Skeleton(2, /*Patience=*/8);
    AbortableStack<> Stack(8);
    // Victim (process 0) runs a forced-slow push and crashes at its
    // (K+1)-th shared access. Whatever prefix ran stays behind: a raised
    // flag, a parked TURN, a held lease, a raised CONTENTION bit.
    runAndCrashAt(
        [&] { (void)Skeleton.strongApply(0, forcedSlowPush(Stack, 7)); }, K);
    const bool CorpseHeldLock = Skeleton.guard().holderForTesting() == 1;

    // Liveness oracle: the survivor (process 1), also forced onto the
    // slow path, must complete regardless of where the victim died...
    const PushResult R = Skeleton.strongApply(1, forcedSlowPush(Stack, 99));
    ASSERT_EQ(R, PushResult::Done) << "crash point " << K;

    // ...degrading to the lock-free fallback exactly when the corpse
    // held the lease, and staying on the starvation-free protected path
    // otherwise (the acceptance criterion's "nonzero exactly in those
    // runs").
    const DegradationStats Stats = Skeleton.statsForTesting();
    if (CorpseHeldLock) {
      EXPECT_EQ(Stats.Degradations, 1u) << "crash point " << K;
      EXPECT_EQ(Stats.Revocations, 1u) << "crash point " << K;
      EXPECT_TRUE(Skeleton.suspects().isSuspectForTesting(0));
    } else {
      EXPECT_EQ(Stats.Degradations, 0u) << "crash point " << K;
      EXPECT_EQ(Stats.ProtectedOps, 1u) << "crash point " << K;
    }

    // Healing: the revocation (or clean state) leaves the lock free, so
    // one more slow operation completes protected and lowers CONTENTION;
    // the whole slow path is back to starvation-free service.
    const PushResult R2 = Skeleton.strongApply(1, forcedSlowPush(Stack, 100));
    ASSERT_EQ(R2, PushResult::Done) << "crash point " << K;
    EXPECT_GE(Skeleton.statsForTesting().ProtectedOps, 1u)
        << "crash point " << K;
    EXPECT_FALSE(Skeleton.contentionForTesting()) << "crash point " << K;
    EXPECT_EQ(Skeleton.guard().holderForTesting(), 0u)
        << "crash point " << K;

    // The values of completed pushes are all present (the victim's push
    // may or may not have landed depending on the crash point).
    std::uint32_t Seen = 0;
    while (Stack.weakPop().isValue())
      ++Seen;
    EXPECT_GE(Seen, 2u) << "crash point " << K;
  }
}

TEST(CrashTest, CrashTolerantStackSurvivesFastPathCrash) {
  // The six-access fast path of the crash-tolerant stack tolerates a
  // crash at every prefix, exactly like the plain Figure 3 stack.
  for (std::uint32_t K = 0; K <= 6; ++K) {
    CrashTolerantStack<> Stack(2, 8);
    runAndCrashAt([&Stack] { (void)Stack.push(0, 7); }, K);

    ASSERT_EQ(Stack.push(1, 99), PushResult::Done);
    const auto R = Stack.pop(1);
    ASSERT_TRUE(R.isValue());
    ASSERT_EQ(R.value(), 99u);
    ASSERT_FALSE(Stack.skeleton().contentionForTesting());
    EXPECT_EQ(Stack.skeleton().statsForTesting().Degradations, 0u);
  }
}

} // namespace
} // namespace csobj
