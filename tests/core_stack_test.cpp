//===- tests/core_stack_test.cpp - Figures 1-3 unit tests ----------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AbortableStack.h"
#include "core/ContentionSensitiveStack.h"
#include "core/NonBlockingStack.h"
#include "locks/TicketLock.h"
#include "memory/AccessCounter.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// Figure 1: abortable stack — sequential semantics
//===----------------------------------------------------------------------===

TEST(AbortableStackTest, InitialStateIsEmpty) {
  AbortableStack<> Stack(8);
  EXPECT_EQ(Stack.capacity(), 8u);
  EXPECT_EQ(Stack.sizeForTesting(), 0u);
  EXPECT_TRUE(Stack.weakPop().isEmpty());
}

TEST(AbortableStackTest, PushThenPopReturnsValue) {
  AbortableStack<> Stack(8);
  EXPECT_EQ(Stack.weakPush(42), PushResult::Done);
  const auto Res = Stack.weakPop();
  ASSERT_TRUE(Res.isValue());
  EXPECT_EQ(Res.value(), 42u);
}

TEST(AbortableStackTest, LifoOrder) {
  AbortableStack<> Stack(8);
  for (std::uint32_t V = 1; V <= 5; ++V)
    EXPECT_EQ(Stack.weakPush(V), PushResult::Done);
  for (std::uint32_t V = 5; V >= 1; --V) {
    const auto Res = Stack.weakPop();
    ASSERT_TRUE(Res.isValue());
    EXPECT_EQ(Res.value(), V);
  }
  EXPECT_TRUE(Stack.weakPop().isEmpty());
}

TEST(AbortableStackTest, FullAtCapacity) {
  AbortableStack<> Stack(3);
  EXPECT_EQ(Stack.weakPush(1), PushResult::Done);
  EXPECT_EQ(Stack.weakPush(2), PushResult::Done);
  EXPECT_EQ(Stack.weakPush(3), PushResult::Done);
  EXPECT_EQ(Stack.weakPush(4), PushResult::Full);
  // Full answer had no effect.
  EXPECT_EQ(Stack.sizeForTesting(), 3u);
  const auto Res = Stack.weakPop();
  ASSERT_TRUE(Res.isValue());
  EXPECT_EQ(Res.value(), 3u);
}

TEST(AbortableStackTest, CapacityOneStack) {
  AbortableStack<> Stack(1);
  EXPECT_EQ(Stack.weakPush(9), PushResult::Done);
  EXPECT_EQ(Stack.weakPush(10), PushResult::Full);
  ASSERT_TRUE(Stack.weakPop().isValue());
  EXPECT_TRUE(Stack.weakPop().isEmpty());
}

TEST(AbortableStackTest, EmptyAfterDrain) {
  AbortableStack<> Stack(4);
  (void)Stack.weakPush(1);
  (void)Stack.weakPush(2);
  (void)Stack.weakPop();
  (void)Stack.weakPop();
  EXPECT_TRUE(Stack.weakPop().isEmpty());
  EXPECT_TRUE(Stack.weakPop().isEmpty()); // Stays empty.
}

TEST(AbortableStackTest, InterleavedPushPopSequence) {
  AbortableStack<> Stack(16);
  std::vector<std::uint32_t> Model;
  SplitMix64 Rng(123);
  for (int I = 0; I < 2000; ++I) {
    if (Rng.chance(60, 100) && Model.size() < 16) {
      const auto V = static_cast<std::uint32_t>(Rng.below(1u << 30));
      EXPECT_EQ(Stack.weakPush(V), PushResult::Done);
      Model.push_back(V);
    } else if (!Model.empty()) {
      const auto Res = Stack.weakPop();
      ASSERT_TRUE(Res.isValue());
      EXPECT_EQ(Res.value(), Model.back());
      Model.pop_back();
    } else {
      EXPECT_TRUE(Stack.weakPop().isEmpty());
    }
  }
  EXPECT_EQ(Stack.sizeForTesting(), Model.size());
}

TEST(AbortableStackTest, LazyHelpCompletesPreviousOperation) {
  AbortableStack<> Stack(4);
  (void)Stack.weakPush(7);
  // The push published in TOP but left STACK[1] to the next operation.
  EXPECT_EQ(Stack.topForTesting().Index, 1u);
  EXPECT_EQ(Stack.topForTesting().Value, 7u);
  EXPECT_EQ(Stack.slotForTesting(1).Value, AbortableStack<>::Bottom);
  // The next operation helps: STACK[1] now holds the pushed value.
  (void)Stack.weakPush(8);
  EXPECT_EQ(Stack.slotForTesting(1).Value, 7u);
}

TEST(AbortableStackTest, SoloOperationsNeverAbort) {
  AbortableStack<> Stack(64);
  for (int I = 0; I < 500; ++I)
    ASSERT_NE(Stack.weakPush(static_cast<std::uint32_t>(I)),
              PushResult::Abort);
  for (int I = 0; I < 600; ++I)
    ASSERT_FALSE(Stack.weakPop().isAbort());
}

TEST(AbortableStackTest, SequenceNumbersAdvancePerSlotReuse) {
  AbortableStack<> Stack(2);
  (void)Stack.weakPush(1); // TOP=(1,1,s1)
  (void)Stack.weakPop();   // TOP=(0,bottom,..)
  (void)Stack.weakPush(2);
  (void)Stack.weakPush(3); // Helps slot 1's second incarnation.
  const auto Slot1 = Stack.slotForTesting(1);
  EXPECT_EQ(Slot1.Value, 2u);
  EXPECT_GE(Slot1.Seq, 2u); // Reused: tag advanced beyond first use.
}

TEST(AbortableStackWideTest, Wide128RoundTrip) {
  AbortableStack<Wide128> Stack(8);
  const std::uint64_t Big = 0x0123456789ABCDEFull;
  EXPECT_EQ(Stack.weakPush(Big), PushResult::Done);
  const auto Res = Stack.weakPop();
  ASSERT_TRUE(Res.isValue());
  EXPECT_EQ(Res.value(), Big);
}

//===----------------------------------------------------------------------===
// Figure 1: the paper's access-count analysis (experiment E1 oracle)
//===----------------------------------------------------------------------===

TEST(AccessCountTest, SuccessfulWeakPushIsFiveAccesses) {
  AbortableStack<> Stack(8);
  const AccessCounts Counts =
      countAccesses([&] { EXPECT_EQ(Stack.weakPush(1), PushResult::Done); });
  // read TOP, read STACK[i] (help), C&S STACK[i] (help), read STACK[i+1],
  // C&S TOP.
  EXPECT_EQ(Counts.total(), 5u);
  EXPECT_EQ(Counts.Reads, 3u);
  EXPECT_EQ(Counts.CasAttempts, 2u);
}

TEST(AccessCountTest, SuccessfulWeakPopIsFiveAccesses) {
  AbortableStack<> Stack(8);
  (void)Stack.weakPush(1);
  const AccessCounts Counts =
      countAccesses([&] { EXPECT_TRUE(Stack.weakPop().isValue()); });
  EXPECT_EQ(Counts.total(), 5u);
  EXPECT_EQ(Counts.Reads, 3u);
  EXPECT_EQ(Counts.CasAttempts, 2u);
}

TEST(AccessCountTest, EmptyPopIsThreeAccesses) {
  AbortableStack<> Stack(8);
  const AccessCounts Counts =
      countAccesses([&] { EXPECT_TRUE(Stack.weakPop().isEmpty()); });
  // read TOP + help (read + C&S).
  EXPECT_EQ(Counts.total(), 3u);
}

TEST(AccessCountTest, FullPushIsThreeAccesses) {
  AbortableStack<> Stack(1);
  (void)Stack.weakPush(1);
  const AccessCounts Counts =
      countAccesses([&] { EXPECT_EQ(Stack.weakPush(2), PushResult::Full); });
  EXPECT_EQ(Counts.total(), 3u);
}

TEST(AccessCountTest, ContentionFreeStrongOpIsSixAccesses) {
  // Theorem 1: a contention-free strong operation is lock-free and
  // accesses shared memory six times (1 read of CONTENTION + 5).
  ContentionSensitiveStack<> Stack(/*NumThreads=*/4, /*Capacity=*/8);
  const AccessCounts PushCounts = countAccesses(
      [&] { EXPECT_EQ(Stack.push(/*Tid=*/0, 7), PushResult::Done); });
  EXPECT_EQ(PushCounts.total(), 6u);

  const AccessCounts PopCounts = countAccesses([&] {
    const auto Res = Stack.pop(/*Tid=*/1);
    ASSERT_TRUE(Res.isValue());
    EXPECT_EQ(Res.value(), 7u);
  });
  EXPECT_EQ(PopCounts.total(), 6u);
}

TEST(AccessCountTest, NonBlockingSoloOpIsFiveAccesses) {
  NonBlockingStack<> Stack(8);
  const AccessCounts Counts =
      countAccesses([&] { EXPECT_EQ(Stack.push(3), PushResult::Done); });
  EXPECT_EQ(Counts.total(), 5u);
}

//===----------------------------------------------------------------------===
// Figure 2: non-blocking stack
//===----------------------------------------------------------------------===

TEST(NonBlockingStackTest, SequentialSemantics) {
  NonBlockingStack<> Stack(4);
  EXPECT_EQ(Stack.push(1), PushResult::Done);
  EXPECT_EQ(Stack.push(2), PushResult::Done);
  auto R = Stack.pop();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 2u);
  R = Stack.pop();
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 1u);
  EXPECT_TRUE(Stack.pop().isEmpty());
}

TEST(NonBlockingStackTest, SoloOpsNeedNoRetries) {
  NonBlockingStack<> Stack(8);
  const auto Push = Stack.pushCounting(5);
  EXPECT_EQ(Push.Result, PushResult::Done);
  EXPECT_EQ(Push.Retries, 0u);
  const auto Pop = Stack.popCounting();
  EXPECT_TRUE(Pop.Result.isValue());
  EXPECT_EQ(Pop.Retries, 0u);
}

TEST(NonBlockingStackTest, ConcurrentPushesAllLand) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t PerThread = 500;
  NonBlockingStack<> Stack(Threads * PerThread);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I)
        ASSERT_EQ(Stack.push(T * PerThread + I + 1), PushResult::Done);
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Stack.sizeForTesting(), Threads * PerThread);

  // Drain single-threaded: every pushed value comes back exactly once.
  std::vector<bool> Seen(Threads * PerThread + 1, false);
  for (std::uint32_t I = 0; I < Threads * PerThread; ++I) {
    const auto Res = Stack.pop();
    ASSERT_TRUE(Res.isValue());
    ASSERT_LT(Res.value(), Seen.size());
    ASSERT_FALSE(Seen[Res.value()]) << "value popped twice";
    Seen[Res.value()] = true;
  }
  EXPECT_TRUE(Stack.pop().isEmpty());
}

TEST(NonBlockingStackTest, ConcurrentMixedOpsConserveElements) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t OpsPerThread = 2000;
  NonBlockingStack<> Stack(1024);
  SpinBarrier Barrier(Threads);
  std::vector<std::int64_t> NetPushes(Threads, 0);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T + 1);
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < OpsPerThread; ++I) {
        if (Rng.chance(1, 2)) {
          if (Stack.push(static_cast<std::uint32_t>(Rng.below(1000)) + 1) ==
              PushResult::Done)
            ++NetPushes[T];
        } else if (Stack.pop().isValue()) {
          --NetPushes[T];
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  const std::int64_t Net =
      std::accumulate(NetPushes.begin(), NetPushes.end(), std::int64_t{0});
  ASSERT_GE(Net, 0);
  EXPECT_EQ(Stack.sizeForTesting(), static_cast<std::uint32_t>(Net));
}

//===----------------------------------------------------------------------===
// Figure 3: contention-sensitive starvation-free stack
//===----------------------------------------------------------------------===

TEST(ContentionSensitiveStackTest, SequentialSemantics) {
  ContentionSensitiveStack<> Stack(2, 4);
  EXPECT_EQ(Stack.push(0, 10), PushResult::Done);
  EXPECT_EQ(Stack.push(0, 20), PushResult::Done);
  auto R = Stack.pop(0);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 20u);
  EXPECT_EQ(Stack.push(1, 30), PushResult::Done);
  R = Stack.pop(1);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 30u);
}

TEST(ContentionSensitiveStackTest, FullAndEmptyAreTotalAnswers) {
  ContentionSensitiveStack<> Stack(2, 2);
  EXPECT_EQ(Stack.push(0, 1), PushResult::Done);
  EXPECT_EQ(Stack.push(0, 2), PushResult::Done);
  EXPECT_EQ(Stack.push(0, 3), PushResult::Full);
  (void)Stack.pop(0);
  (void)Stack.pop(0);
  EXPECT_TRUE(Stack.pop(0).isEmpty());
}

TEST(ContentionSensitiveStackTest, StrongOpsNeverAbort) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t OpsPerThread = 2000;
  ContentionSensitiveStack<> Stack(Threads, 512);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T + 10);
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < OpsPerThread; ++I) {
        if (Rng.chance(1, 2)) {
          const PushResult R =
              Stack.push(T, static_cast<std::uint32_t>(Rng.below(9999)) + 1);
          ASSERT_NE(R, PushResult::Abort);
        } else {
          ASSERT_FALSE(Stack.pop(T).isAbort());
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_FALSE(Stack.skeleton().contentionForTesting());
}

TEST(ContentionSensitiveStackTest, ConcurrentPushesAllLand) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t PerThread = 500;
  ContentionSensitiveStack<> Stack(Threads, Threads * PerThread);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I)
        ASSERT_EQ(Stack.push(T, T * PerThread + I + 1), PushResult::Done);
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Stack.sizeForTesting(), Threads * PerThread);

  std::vector<bool> Seen(Threads * PerThread + 1, false);
  for (std::uint32_t I = 0; I < Threads * PerThread; ++I) {
    const auto Res = Stack.pop(0);
    ASSERT_TRUE(Res.isValue());
    ASSERT_FALSE(Seen[Res.value()]) << "value popped twice";
    Seen[Res.value()] = true;
  }
  EXPECT_TRUE(Stack.pop(0).isEmpty());
}

TEST(ContentionSensitiveStackTest, WorksWithTicketLock) {
  ContentionSensitiveStack<Compact64, TicketLock> Stack(2, 8);
  EXPECT_EQ(Stack.push(0, 5), PushResult::Done);
  auto R = Stack.pop(1);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 5u);
}

} // namespace
} // namespace csobj
