//===- tests/obs_test.cpp - Path-attributed metrics unit tests -----------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
//
// Unit tests for src/obs/PathCounters.h: the MetricSink counter blocks,
// the PathSnapshot conservation laws, and deterministic path attribution
// through real objects (solo operations are Shortcuts; forced rescues
// book Eliminated; concurrent stress conserves at quiesce). Every
// expectation that reads a nonzero counter is gated on
// obs::MetricsEnabled so the suite also passes under -DCSOBJ_NO_METRICS,
// where the same tests instead prove the sink is inert.
//
//===----------------------------------------------------------------------===//

#include "core/ContentionSensitiveStack.h"
#include "obs/PathCounters.h"
#include "perf/EliminatingStack.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// MetricSink: per-thread blocks, snapshot aggregation, lastPath, reset
//===----------------------------------------------------------------------===

TEST(MetricSink, CountsPerThreadAndAggregates) {
  obs::MetricSink Sink(3);
  Sink.onOp(0);
  Sink.onPath(0, obs::Path::Shortcut);
  Sink.onOp(2);
  Sink.onPath(2, obs::Path::Lock);
  Sink.onEvent(2, obs::Event::ShortcutAbort);
  Sink.onEvent(2, obs::Event::ProtectedRetry, 3);

  const obs::PathSnapshot S = Sink.snapshot();
  if constexpr (obs::MetricsEnabled) {
    EXPECT_EQ(S.Ops, 2u);
    EXPECT_EQ(S.path(obs::Path::Shortcut), 1u);
    EXPECT_EQ(S.path(obs::Path::Lock), 1u);
    EXPECT_EQ(S.path(obs::Path::Eliminated), 0u);
    EXPECT_EQ(S.event(obs::Event::ShortcutAbort), 1u);
    EXPECT_EQ(S.event(obs::Event::ProtectedRetry), 3u);
    EXPECT_TRUE(S.conserves());
  } else {
    // Compiled out: the sink swallows everything.
    EXPECT_EQ(S.Ops, 0u);
    EXPECT_EQ(S.pathTotal(), 0u);
    EXPECT_TRUE(S.conserves());
  }
}

TEST(MetricSink, LastPathTracksPerThread) {
  obs::MetricSink Sink(2);
  EXPECT_EQ(Sink.lastPath(0), obs::Path::None);
  EXPECT_EQ(Sink.lastPath(1), obs::Path::None);
  Sink.onPath(0, obs::Path::Shortcut);
  Sink.onPath(1, obs::Path::Degraded);
  if constexpr (obs::MetricsEnabled) {
    EXPECT_EQ(Sink.lastPath(0), obs::Path::Shortcut);
    EXPECT_EQ(Sink.lastPath(1), obs::Path::Degraded);
    Sink.onPath(0, obs::Path::Lock);
    EXPECT_EQ(Sink.lastPath(0), obs::Path::Lock);
    EXPECT_EQ(Sink.lastPath(1), obs::Path::Degraded)
        << "thread 1's last path must not be disturbed by thread 0";
  } else {
    EXPECT_EQ(Sink.lastPath(0), obs::Path::None);
  }
}

TEST(MetricSink, ResetZeroesEverything) {
  obs::MetricSink Sink(2);
  Sink.onOp(0);
  Sink.onPath(0, obs::Path::Shortcut);
  Sink.onEvent(1, obs::Event::CombinerBatch, 5);
  Sink.reset();
  const obs::PathSnapshot S = Sink.snapshot();
  EXPECT_EQ(S.Ops, 0u);
  EXPECT_EQ(S.pathTotal(), 0u);
  for (unsigned I = 0; I < obs::NumEvents; ++I)
    EXPECT_EQ(S.Events[I], 0u);
  EXPECT_EQ(Sink.lastPath(0), obs::Path::None);
}

TEST(MetricSink, ConcurrentIncrementsSumExactly) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint64_t PerThread = 20000;
  obs::MetricSink Sink(Threads);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint64_t I = 0; I < PerThread; ++I) {
        Sink.onOp(T);
        Sink.onPath(T, obs::Path::Shortcut);
      }
    });
  for (auto &W : Workers)
    W.join();
  const obs::PathSnapshot S = Sink.snapshot();
  if constexpr (obs::MetricsEnabled) {
    EXPECT_EQ(S.Ops, Threads * PerThread);
    EXPECT_EQ(S.path(obs::Path::Shortcut), Threads * PerThread);
  }
  EXPECT_TRUE(S.conserves());
}

//===----------------------------------------------------------------------===
// PathSnapshot: conservation-law algebra and accumulation
//===----------------------------------------------------------------------===

TEST(PathSnapshot, ConservationLawsHoldAndBreak) {
  obs::PathSnapshot S;
  EXPECT_TRUE(S.conserves()) << "the empty snapshot trivially conserves";

  // A well-formed mixed execution: 10 ops, 6 shortcut, 2 eliminated
  // (one pairing), 1 lock, 1 degraded caused by one doorway timeout.
  S.Ops = 10;
  S.Paths[static_cast<unsigned>(obs::Path::Shortcut)] = 6;
  S.Paths[static_cast<unsigned>(obs::Path::Eliminated)] = 2;
  S.Paths[static_cast<unsigned>(obs::Path::Lock)] = 1;
  S.Paths[static_cast<unsigned>(obs::Path::Degraded)] = 1;
  S.Events[static_cast<unsigned>(obs::Event::EliminatedPush)] = 1;
  S.Events[static_cast<unsigned>(obs::Event::EliminatedPop)] = 1;
  S.Events[static_cast<unsigned>(obs::Event::DoorwayTimeout)] = 1;
  EXPECT_EQ(S.pathTotal(), 10u);
  EXPECT_TRUE(S.conserves());

  // Each law individually broken must be caught.
  obs::PathSnapshot Lost = S;
  Lost.Ops = 11; // one entered op never retired
  EXPECT_FALSE(Lost.conserves());

  obs::PathSnapshot Unpaired = S;
  Unpaired.Events[static_cast<unsigned>(obs::Event::EliminatedPop)] = 0;
  EXPECT_FALSE(Unpaired.conserves());

  obs::PathSnapshot Causeless = S;
  Causeless.Events[static_cast<unsigned>(obs::Event::DoorwayTimeout)] = 0;
  EXPECT_FALSE(Causeless.conserves());
}

TEST(PathSnapshot, AccumulationSumsFieldwise) {
  obs::PathSnapshot A;
  A.Ops = 3;
  A.Paths[static_cast<unsigned>(obs::Path::Shortcut)] = 3;
  obs::PathSnapshot B;
  B.Ops = 2;
  B.Paths[static_cast<unsigned>(obs::Path::Lock)] = 2;
  B.Events[static_cast<unsigned>(obs::Event::ProtectedRetry)] = 4;
  A += B;
  EXPECT_EQ(A.Ops, 5u);
  EXPECT_EQ(A.path(obs::Path::Shortcut), 3u);
  EXPECT_EQ(A.path(obs::Path::Lock), 2u);
  EXPECT_EQ(A.event(obs::Event::ProtectedRetry), 4u);
  EXPECT_TRUE(A.conserves());
}

TEST(PathSnapshot, PathNamesAreStable) {
  // JSON field names derive from these; renaming one breaks every
  // consumer of BENCH_*.json, so pin them.
  EXPECT_STREQ(pathName(obs::Path::Shortcut), "shortcut");
  EXPECT_STREQ(pathName(obs::Path::Eliminated), "eliminated");
  EXPECT_STREQ(pathName(obs::Path::Combined), "combined");
  EXPECT_STREQ(pathName(obs::Path::Lock), "lock");
  EXPECT_STREQ(pathName(obs::Path::Degraded), "degraded");
  EXPECT_STREQ(pathName(obs::Path::None), "none");
}

//===----------------------------------------------------------------------===
// Attribution through real objects
//===----------------------------------------------------------------------===

TEST(PathAttribution, SoloOpsAreAllShortcuts) {
  ContentionSensitiveStack<> Stack(/*NumThreads=*/2, /*Capacity=*/8);
  constexpr std::uint64_t Ops = 6;
  for (std::uint32_t I = 0; I < 3; ++I)
    ASSERT_EQ(Stack.push(0, I + 1), PushResult::Done);
  for (std::uint32_t I = 0; I < 3; ++I)
    ASSERT_TRUE(Stack.pop(0).isValue());
  const obs::PathSnapshot S = Stack.pathSnapshot();
  EXPECT_TRUE(S.conserves());
  if constexpr (obs::MetricsEnabled) {
    EXPECT_EQ(S.Ops, Ops);
    EXPECT_EQ(S.path(obs::Path::Shortcut), Ops)
        << "a solo thread must never leave the six-access fast path";
    EXPECT_EQ(S.event(obs::Event::ShortcutAbort), 0u);
    EXPECT_EQ(Stack.lastPath(0), obs::Path::Shortcut);
  } else {
    EXPECT_EQ(S.Ops, 0u);
    EXPECT_EQ(Stack.lastPath(0), obs::Path::None);
  }
}

TEST(PathAttribution, ForcedRescueBooksEliminated) {
  // One rendezvous slot, generous spin budget: a pushing and a popping
  // thread in force-rescue mode meet with near certainty within a few
  // hundred rounds. Whatever mix of eliminations and fallbacks occurs,
  // the conservation laws must hold at quiesce.
  EliminatingContentionSensitiveStack<> S(/*NumThreads=*/2, /*Capacity=*/64,
                                          /*SlotCount=*/1,
                                          /*SpinBudget=*/4096);
  S.forceRescueForTesting(true);
  constexpr std::uint32_t Rounds = 400;
  SpinBarrier Barrier(2);
  std::thread Pusher([&] {
    Barrier.arriveAndWait();
    for (std::uint32_t I = 0; I < Rounds; ++I)
      (void)S.push(0, I + 1);
  });
  std::thread Popper([&] {
    Barrier.arriveAndWait();
    for (std::uint32_t I = 0; I < Rounds; ++I)
      (void)S.pop(1);
  });
  Pusher.join();
  Popper.join();

  const obs::PathSnapshot Snap = S.pathSnapshot();
  EXPECT_TRUE(Snap.conserves());
  if constexpr (obs::MetricsEnabled) {
    EXPECT_EQ(Snap.Ops, 2u * Rounds);
    EXPECT_GT(Snap.path(obs::Path::Eliminated), 0u)
        << "force-rescue on a single slot should pair at least once in "
        << Rounds << " rounds";
    EXPECT_EQ(Snap.event(obs::Event::EliminatedPush),
              Snap.event(obs::Event::EliminatedPop));
  }
}

TEST(PathAttribution, ConcurrentStressConservesAtQuiesce) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint64_t PerThread = 2000;
  ContentionSensitiveStack<> Stack(Threads, /*Capacity=*/64);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(0x0B5E55ull + T);
      Barrier.arriveAndWait();
      for (std::uint64_t I = 0; I < PerThread; ++I) {
        if (Rng.chance(1, 2))
          (void)Stack.push(T, static_cast<std::uint32_t>(I + 1));
        else
          (void)Stack.pop(T);
      }
    });
  for (auto &W : Workers)
    W.join();
  const obs::PathSnapshot S = Stack.pathSnapshot();
  EXPECT_TRUE(S.conserves())
      << "ops=" << S.Ops << " pathTotal=" << S.pathTotal();
  if constexpr (obs::MetricsEnabled) {
    EXPECT_EQ(S.Ops, Threads * PerThread);
    // Under real contention some operations must have left the fast
    // path; the breakdown is the observable the layer exists to expose.
    EXPECT_EQ(S.path(obs::Path::Shortcut) + S.path(obs::Path::Lock) +
                  S.path(obs::Path::Eliminated),
              Threads * PerThread);
  }
}

} // namespace
} // namespace csobj
