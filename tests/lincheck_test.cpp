//===- tests/lincheck_test.cpp - Linearizability checker tests -----------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First validates the checker itself on hand-built histories with known
/// verdicts, then uses it as the oracle over real concurrent runs of
/// every stack and queue implementation in the library (the paper's
/// safety property — linearizability — checked mechanically).
///
//===----------------------------------------------------------------------===//

#include "lincheck/Checker.h"
#include "lincheck/History.h"
#include "lincheck/Spec.h"

#include "baselines/EliminationBackoffStack.h"
#include "baselines/LockedStack.h"
#include "baselines/MichaelScottQueue.h"
#include "baselines/TreiberStack.h"
#include "core/AbortableQueue.h"
#include "core/AbortableStack.h"
#include "core/ContentionSensitiveQueue.h"
#include "core/ContentionSensitiveStack.h"
#include "core/NonBlockingQueue.h"
#include "core/NonBlockingStack.h"
#include "runtime/SpinBarrier.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace csobj {
namespace {

Operation makeOp(std::uint32_t Tid, OpCode Code, std::uint32_t Arg,
                 ResCode Result, std::uint32_t Ret, std::uint64_t Invoke,
                 std::uint64_t Response) {
  Operation Op;
  Op.Tid = Tid;
  Op.Code = Code;
  Op.Arg = Arg;
  Op.Result = Result;
  Op.RetValue = Ret;
  Op.InvokeNs = Invoke;
  Op.ResponseNs = Response;
  return Op;
}

//===----------------------------------------------------------------------===
// Checker on known histories
//===----------------------------------------------------------------------===

TEST(CheckerTest, EmptyHistoryIsLinearizable) {
  History H;
  EXPECT_TRUE(checkLinearizable(H, BoundedStackSpec(4)).Linearizable);
}

TEST(CheckerTest, SequentialHistoryIsLinearizable) {
  History H;
  H.Ops.push_back(makeOp(0, OpCode::Push, 1, ResCode::Done, 0, 0, 1));
  H.Ops.push_back(makeOp(0, OpCode::Push, 2, ResCode::Done, 0, 2, 3));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 2, 4, 5));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 1, 6, 7));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Empty, 0, 8, 9));
  EXPECT_TRUE(checkLinearizable(H, BoundedStackSpec(4)).Linearizable);
}

TEST(CheckerTest, WrongPopOrderIsNotLinearizable) {
  History H;
  H.Ops.push_back(makeOp(0, OpCode::Push, 1, ResCode::Done, 0, 0, 1));
  H.Ops.push_back(makeOp(0, OpCode::Push, 2, ResCode::Done, 0, 2, 3));
  // FIFO answer from a stack: impossible.
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 1, 4, 5));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 2, 6, 7));
  EXPECT_FALSE(checkLinearizable(H, BoundedStackSpec(4)).Linearizable);
}

TEST(CheckerTest, SameHistoryLinearizableAsQueue) {
  History H;
  H.Ops.push_back(makeOp(0, OpCode::Push, 1, ResCode::Done, 0, 0, 1));
  H.Ops.push_back(makeOp(0, OpCode::Push, 2, ResCode::Done, 0, 2, 3));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 1, 4, 5));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 2, 6, 7));
  EXPECT_TRUE(checkLinearizable(H, BoundedQueueSpec(4)).Linearizable);
}

TEST(CheckerTest, OverlappingOpsMayReorder) {
  History H;
  // Two overlapping pushes, then pops that only fit one push order.
  H.Ops.push_back(makeOp(0, OpCode::Push, 1, ResCode::Done, 0, 0, 10));
  H.Ops.push_back(makeOp(1, OpCode::Push, 2, ResCode::Done, 0, 0, 10));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 1, 11, 12));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 2, 13, 14));
  EXPECT_TRUE(checkLinearizable(H, BoundedStackSpec(4)).Linearizable);
}

TEST(CheckerTest, RealTimeOrderIsRespected) {
  History H;
  // push(1) finishes before push(2) starts; pops claim 1 on top: illegal.
  H.Ops.push_back(makeOp(0, OpCode::Push, 1, ResCode::Done, 0, 0, 1));
  H.Ops.push_back(makeOp(1, OpCode::Push, 2, ResCode::Done, 0, 2, 3));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 1, 4, 5));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 2, 6, 7));
  EXPECT_FALSE(checkLinearizable(H, BoundedStackSpec(4)).Linearizable);
}

TEST(CheckerTest, PopEmptyOnNonEmptyStackIsIllegal) {
  History H;
  H.Ops.push_back(makeOp(0, OpCode::Push, 1, ResCode::Done, 0, 0, 1));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Empty, 0, 2, 3));
  EXPECT_FALSE(checkLinearizable(H, BoundedStackSpec(4)).Linearizable);
}

TEST(CheckerTest, PopEmptyLegalWhenOverlappingThePush) {
  History H;
  H.Ops.push_back(makeOp(0, OpCode::Push, 1, ResCode::Done, 0, 0, 10));
  H.Ops.push_back(makeOp(1, OpCode::Pop, 0, ResCode::Empty, 0, 1, 2));
  EXPECT_TRUE(checkLinearizable(H, BoundedStackSpec(4)).Linearizable);
}

TEST(CheckerTest, FullAnswerRequiresFullStack) {
  History H;
  H.Ops.push_back(makeOp(0, OpCode::Push, 1, ResCode::Done, 0, 0, 1));
  H.Ops.push_back(makeOp(0, OpCode::Push, 2, ResCode::Full, 0, 2, 3));
  EXPECT_FALSE(checkLinearizable(H, BoundedStackSpec(2)).Linearizable);
  // With capacity 1 the same history is fine.
  EXPECT_TRUE(checkLinearizable(H, BoundedStackSpec(1)).Linearizable);
}

TEST(CheckerTest, DuplicatedPopIsCaught) {
  History H;
  H.Ops.push_back(makeOp(0, OpCode::Push, 7, ResCode::Done, 0, 0, 1));
  H.Ops.push_back(makeOp(0, OpCode::Pop, 0, ResCode::Value, 7, 2, 3));
  H.Ops.push_back(makeOp(1, OpCode::Pop, 0, ResCode::Value, 7, 2, 3));
  EXPECT_FALSE(checkLinearizable(H, BoundedStackSpec(4)).Linearizable);
}

TEST(CheckerTest, LostPushIsCaught) {
  History H;
  // Push completes, later lone pop says empty: the push was lost.
  H.Ops.push_back(makeOp(0, OpCode::Push, 7, ResCode::Done, 0, 0, 1));
  H.Ops.push_back(makeOp(1, OpCode::Pop, 0, ResCode::Empty, 0, 5, 6));
  EXPECT_FALSE(checkLinearizable(H, BoundedStackSpec(4)).Linearizable);
}

//===----------------------------------------------------------------------===
// BoundedDequeSpec end-discipline
//===----------------------------------------------------------------------===

TEST(DequeSpecTest, PlainPushAndPopAreRejected) {
  // The deque spec only speaks the four end-qualified codes; an adapter
  // that records a plain Push/Pop against it is a harness bug and must be
  // rejected outright, not silently folded onto one end.
  BoundedDequeSpec Spec(4);
  EXPECT_FALSE(
      Spec.apply(makeOp(0, OpCode::Push, 1, ResCode::Done, 0, 0, 1)));
  EXPECT_FALSE(
      Spec.apply(makeOp(0, OpCode::Pop, 0, ResCode::Empty, 0, 2, 3)));
}

TEST(DequeSpecTest, EndQualifiedSequenceIsAccepted) {
  BoundedDequeSpec Spec(4);
  EXPECT_TRUE(
      Spec.apply(makeOp(0, OpCode::PushLeft, 1, ResCode::Done, 0, 0, 1)));
  EXPECT_TRUE(
      Spec.apply(makeOp(0, OpCode::PushRight, 2, ResCode::Done, 0, 2, 3)));
  // [1, 2]: left pop sees 1, right pop sees 2, then the deque is empty.
  EXPECT_TRUE(
      Spec.apply(makeOp(0, OpCode::PopLeft, 0, ResCode::Value, 1, 4, 5)));
  EXPECT_TRUE(
      Spec.apply(makeOp(0, OpCode::PopRight, 0, ResCode::Value, 2, 6, 7)));
  EXPECT_TRUE(
      Spec.apply(makeOp(0, OpCode::PopLeft, 0, ResCode::Empty, 0, 8, 9)));
}

TEST(DequeSpecTest, FullEdgeAtCapacity) {
  BoundedDequeSpec Spec(2);
  EXPECT_TRUE(
      Spec.apply(makeOp(0, OpCode::PushLeft, 1, ResCode::Done, 0, 0, 1)));
  EXPECT_TRUE(
      Spec.apply(makeOp(0, OpCode::PushRight, 2, ResCode::Done, 0, 2, 3)));
  // At capacity: Done is illegal, Full is the only legal answer.
  EXPECT_FALSE(
      Spec.apply(makeOp(0, OpCode::PushLeft, 3, ResCode::Done, 0, 4, 5)));
  EXPECT_TRUE(
      Spec.apply(makeOp(0, OpCode::PushRight, 3, ResCode::Full, 0, 4, 5)));
}

TEST(DequeSpecTest, CheckerRejectsPlainPushHistoryAgainstDequeSpec) {
  History H;
  H.Ops.push_back(makeOp(0, OpCode::Push, 1, ResCode::Done, 0, 0, 1));
  EXPECT_FALSE(checkLinearizable(H, BoundedDequeSpec(2)).Linearizable);
}

//===----------------------------------------------------------------------===
// Oracle over real concurrent executions
//===----------------------------------------------------------------------===

/// Runs Rounds independent rounds. Each round constructs a fresh object
/// via MakeObject, runs Threads x OpsPerThread random operations through
/// Apply(Object, Tid, IsPush, Value, Recorder) — which records every
/// non-bottom completion — and checks the merged history against a fresh
/// spec (the object and the spec both start empty each round).
template <typename MakeObjFn, typename ApplyFn, typename SpecT>
void runAndCheck(std::uint32_t Threads, std::uint32_t OpsPerThread,
                 std::uint32_t Rounds, MakeObjFn MakeObject, ApplyFn Apply,
                 SpecT MakeSpec) {
  for (std::uint32_t Round = 0; Round < Rounds; ++Round) {
    auto Object = MakeObject();
    std::vector<HistoryRecorder> Recorders;
    for (std::uint32_t T = 0; T < Threads; ++T)
      Recorders.emplace_back(T);
    SpinBarrier Barrier(Threads);
    std::vector<std::thread> Workers;
    for (std::uint32_t T = 0; T < Threads; ++T)
      Workers.emplace_back([&, T] {
        SplitMix64 Rng(Round * 1000 + T);
        Barrier.arriveAndWait();
        for (std::uint32_t I = 0; I < OpsPerThread; ++I) {
          const bool IsPush = Rng.chance(1, 2);
          const auto V =
              static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1;
          Apply(*Object, T, IsPush, V, Recorders[T]);
        }
      });
    for (auto &W : Workers)
      W.join();
    const History H = mergeHistories(Recorders);
    ASSERT_TRUE(H.wellFormed());
    const CheckResult Result = checkLinearizable(H, MakeSpec());
    ASSERT_FALSE(Result.HitSearchCap) << "inconclusive check";
    ASSERT_TRUE(Result.Linearizable) << Result.FailureNote;
  }
}

/// Records one push outcome unless it aborted.
void recordPush(HistoryRecorder &Rec, PushResult Res, std::uint32_t V,
                std::uint64_t T0, std::uint64_t T1) {
  if (Res != PushResult::Abort)
    Rec.recordPush(V, Res == PushResult::Full, T0, T1);
}

/// Records one pop outcome unless it aborted.
void recordPop(HistoryRecorder &Rec, const PopResult<std::uint32_t> &Res,
               std::uint64_t T0, std::uint64_t T1) {
  if (Res.isValue())
    Rec.recordPopValue(Res.value(), T0, T1);
  else if (Res.isEmpty())
    Rec.recordPopEmpty(T0, T1);
}

TEST(LincheckStress, AbortableStackLinearizesAndAbortsHaveNoEffect) {
  runAndCheck(
      3, 6, 40, [] { return std::make_unique<AbortableStack<>>(4); },
      [](AbortableStack<> &Stack, std::uint32_t, bool IsPush,
         std::uint32_t V, HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Stack.weakPush(V), V, T0, HistoryRecorder::now());
        else
          recordPop(Rec, Stack.weakPop(), T0, HistoryRecorder::now());
      },
      [] { return BoundedStackSpec(4); });
}

TEST(LincheckStress, NonBlockingStackLinearizes) {
  runAndCheck(
      3, 6, 40, [] { return std::make_unique<NonBlockingStack<>>(4); },
      [](NonBlockingStack<> &Stack, std::uint32_t, bool IsPush,
         std::uint32_t V, HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Stack.push(V), V, T0, HistoryRecorder::now());
        else
          recordPop(Rec, Stack.pop(), T0, HistoryRecorder::now());
      },
      [] { return BoundedStackSpec(4); });
}

TEST(LincheckStress, ContentionSensitiveStackLinearizes) {
  runAndCheck(
      3, 6, 40,
      [] { return std::make_unique<ContentionSensitiveStack<>>(3, 4); },
      [](ContentionSensitiveStack<> &Stack, std::uint32_t Tid, bool IsPush,
         std::uint32_t V, HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Stack.push(Tid, V), V, T0,
                     HistoryRecorder::now());
        else
          recordPop(Rec, Stack.pop(Tid), T0, HistoryRecorder::now());
      },
      [] { return BoundedStackSpec(4); });
}

TEST(LincheckStress, AbortableQueueLinearizes) {
  runAndCheck(
      3, 6, 40, [] { return std::make_unique<AbortableQueue<>>(4); },
      [](AbortableQueue<> &Queue, std::uint32_t, bool IsPush,
         std::uint32_t V, HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Queue.weakEnqueue(V), V, T0,
                     HistoryRecorder::now());
        else
          recordPop(Rec, Queue.weakDequeue(), T0, HistoryRecorder::now());
      },
      [] { return BoundedQueueSpec(4); });
}

TEST(LincheckStress, NonBlockingQueueLinearizes) {
  runAndCheck(
      3, 6, 40, [] { return std::make_unique<NonBlockingQueue<>>(4); },
      [](NonBlockingQueue<> &Queue, std::uint32_t, bool IsPush,
         std::uint32_t V, HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Queue.enqueue(V), V, T0, HistoryRecorder::now());
        else
          recordPop(Rec, Queue.dequeue(), T0, HistoryRecorder::now());
      },
      [] { return BoundedQueueSpec(4); });
}

TEST(LincheckStress, ContentionSensitiveQueueLinearizes) {
  runAndCheck(
      3, 6, 40,
      [] { return std::make_unique<ContentionSensitiveQueue<>>(3, 4); },
      [](ContentionSensitiveQueue<> &Queue, std::uint32_t Tid, bool IsPush,
         std::uint32_t V, HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Queue.enqueue(Tid, V), V, T0,
                     HistoryRecorder::now());
        else
          recordPop(Rec, Queue.dequeue(Tid), T0, HistoryRecorder::now());
      },
      [] { return BoundedQueueSpec(4); });
}

TEST(LincheckStress, TreiberStackLinearizes) {
  runAndCheck(
      3, 6, 40, [] { return std::make_unique<TreiberStack>(4); },
      [](TreiberStack &Stack, std::uint32_t, bool IsPush, std::uint32_t V,
         HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Stack.push(V), V, T0, HistoryRecorder::now());
        else
          recordPop(Rec, Stack.pop(), T0, HistoryRecorder::now());
      },
      [] { return BoundedStackSpec(4); });
}

TEST(LincheckStress, EliminationStackLinearizes) {
  runAndCheck(
      3, 6, 40,
      [] {
        return std::make_unique<EliminationBackoffStack>(4, /*SlotCount=*/2,
                                                         /*SpinBudget=*/16);
      },
      [](EliminationBackoffStack &Stack, std::uint32_t, bool IsPush,
         std::uint32_t V, HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Stack.push(V), V, T0, HistoryRecorder::now());
        else
          recordPop(Rec, Stack.pop(), T0, HistoryRecorder::now());
      },
      [] { return BoundedStackSpec(4); });
}

TEST(LincheckStress, MichaelScottQueueLinearizes) {
  runAndCheck(
      3, 6, 40, [] { return std::make_unique<MichaelScottQueue>(4); },
      [](MichaelScottQueue &Queue, std::uint32_t, bool IsPush,
         std::uint32_t V, HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Queue.enqueue(V), V, T0, HistoryRecorder::now());
        else
          recordPop(Rec, Queue.dequeue(), T0, HistoryRecorder::now());
      },
      [] { return BoundedQueueSpec(4); });
}

TEST(LincheckStress, LockedStackLinearizes) {
  runAndCheck(
      3, 6, 40, [] { return std::make_unique<LockedStack<>>(3, 4); },
      [](LockedStack<> &Stack, std::uint32_t Tid, bool IsPush,
         std::uint32_t V, HistoryRecorder &Rec) {
        const auto T0 = HistoryRecorder::now();
        if (IsPush)
          recordPush(Rec, Stack.push(Tid, V), V, T0,
                     HistoryRecorder::now());
        else
          recordPop(Rec, Stack.pop(Tid), T0, HistoryRecorder::now());
      },
      [] { return BoundedStackSpec(4); });
}

} // namespace
} // namespace csobj
