//===- tests/soak_test.cpp - Service-mode soak harness ---------------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The soak layer (src/soak/), bottom up:
///
///  * ArrivalStream — the open-loop load generator is deterministic
///    under a fixed seed, realises the configured rate, and skews keys
///    the way Zipf says it should.
///  * CampaignHook / CampaignRunner — posted faults are delivered at the
///    victim's next shared access through the SchedHook channel, and the
///    wall-clock runner actually posts during active phases.
///  * evaluateSlo — synthetic windows produce the exact violations the
///    policy promises (and a clean run produces none).
///  * runSoak — a short end-to-end smoke over the crash-tolerant stack:
///    windows are produced, operations complete, per-window and final
///    conservation hold, and the empty policy passes.
///
/// The long-form soak (60s, full campaign) is experiment E15
/// (bench/bench_soak.cpp); this file keeps the harness honest at test
/// timescales.
///
//===----------------------------------------------------------------------===//

#include "soak/SoakHarness.h"

#include "core/CrashTolerantStack.h"
#include "runtime/Driver.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace csobj {
namespace {

using namespace csobj::soak;

//===----------------------------------------------------------------------===
// ArrivalStream
//===----------------------------------------------------------------------===

ArrivalSchedule rampSchedule() {
  ArrivalSchedule Sched;
  Sched.Phases = {{0.5, 2000, 4000}, {0.5, 4000, 2000}};
  Sched.BurstMeanPeriodSec = 0.5;
  Sched.BurstDurationSec = 0.1;
  Sched.BurstMultiplier = 3.0;
  Sched.Keys = 8;
  Sched.ZipfS = 1.2;
  Sched.PushPercent = 50;
  return Sched;
}

TEST(ArrivalStreamTest, SameSeedReplaysTheExactSequence) {
  const ArrivalSchedule Sched = rampSchedule();
  ArrivalStream A(Sched, 42), B(Sched, 42);
  for (int I = 0; I < 2000; ++I) {
    const Arrival X = A.next(), Y = B.next();
    ASSERT_EQ(X.NominalNs, Y.NominalNs) << "arrival " << I;
    ASSERT_EQ(X.Key, Y.Key) << "arrival " << I;
    ASSERT_EQ(X.IsPush, Y.IsPush) << "arrival " << I;
    ASSERT_EQ(X.Value, Y.Value) << "arrival " << I;
  }
}

TEST(ArrivalStreamTest, DifferentSeedsDiverge) {
  const ArrivalSchedule Sched = rampSchedule();
  ArrivalStream A(Sched, 1), B(Sched, 2);
  bool Diverged = false;
  for (int I = 0; I < 64 && !Diverged; ++I)
    Diverged = A.next().NominalNs != B.next().NominalNs;
  EXPECT_TRUE(Diverged);
}

TEST(ArrivalStreamTest, TimestampsAreNonDecreasing) {
  ArrivalStream Stream(rampSchedule(), 7);
  std::uint64_t Prev = 0;
  for (int I = 0; I < 5000; ++I) {
    const std::uint64_t Now = Stream.next().NominalNs;
    ASSERT_GE(Now, Prev);
    Prev = Now;
  }
}

TEST(ArrivalStreamTest, FlatScheduleRealisesItsRate) {
  // 20000 exponential gaps at 5000/s: the elapsed stream time is 4s in
  // expectation with a relative sigma of 1/sqrt(20000) ~ 0.7%, so a 5%
  // band is a >7-sigma assertion — deterministic in practice.
  const double Rate = 5000.0;
  ArrivalStream Stream(ArrivalSchedule::flat(Rate), 11);
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Stream.next();
  const double Empirical = N / Stream.nowSec();
  EXPECT_NEAR(Empirical, Rate, Rate * 0.05);
}

TEST(ArrivalStreamTest, ZipfSkewMakesLowKeysHot) {
  ArrivalSchedule Sched = ArrivalSchedule::flat(1000);
  Sched.Keys = 8;
  Sched.ZipfS = 1.2;
  ArrivalStream Stream(Sched, 3);
  std::vector<std::uint64_t> Hist(Sched.Keys, 0);
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    const std::uint32_t Key = Stream.next().Key;
    ASSERT_LT(Key, Sched.Keys);
    ++Hist[Key];
  }
  // Zipf(1.2) weights: w0 = 1, w1 ~ 0.44, w7 ~ 0.08. Coarse shape
  // checks with lots of headroom over sampling noise.
  EXPECT_GT(Hist[0], Hist[1]);
  EXPECT_GT(Hist[1], Hist[7]);
  EXPECT_GT(Hist[0], 3 * Hist[7]);
}

TEST(ArrivalStreamTest, UniformKeysWhenSkewIsZero) {
  ArrivalSchedule Sched = ArrivalSchedule::flat(1000);
  Sched.Keys = 4;
  Sched.ZipfS = 0.0;
  ArrivalStream Stream(Sched, 5);
  std::vector<std::uint64_t> Hist(Sched.Keys, 0);
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    ++Hist[Stream.next().Key];
  for (std::uint32_t K = 0; K < Sched.Keys; ++K)
    EXPECT_NEAR(static_cast<double>(Hist[K]), N / 4.0, N / 4.0 * 0.2)
        << "key " << K;
}

//===----------------------------------------------------------------------===
// CampaignHook / CampaignRunner
//===----------------------------------------------------------------------===

TEST(CampaignHookTest, DeliversPostedFaultsAtTheNextSharedAccess) {
  FaultClock Clock;
  CampaignHook Hook(Clock);
  AtomicRegister<std::uint32_t> Reg;
  SchedHookScope Scope(Hook);

  // No command posted: accesses are clean.
  Reg.write(1);
  EXPECT_EQ(Hook.crashesFired(), 0u);
  EXPECT_EQ(Hook.stallsFired(), 0u);

  // A posted crash fires exactly once, at the next access.
  Hook.postCrash();
  bool Crashed = false;
  try {
    Reg.write(2);
  } catch (const ProcessCrash &) {
    Crashed = true;
  }
  EXPECT_TRUE(Crashed);
  EXPECT_EQ(Hook.crashesFired(), 1u);
  EXPECT_EQ(Reg.peekForTesting(), 1u); // The faulted write never ran.

  // The command was consumed: the follow-up access is clean again.
  Reg.write(3);
  EXPECT_EQ(Hook.crashesFired(), 1u);

  // A posted stall holds, then lets the access complete (solo escape
  // hatch, same as every other wall-clock stall).
  Hook.postStall(4);
  Reg.write(4);
  EXPECT_EQ(Hook.stallsFired(), 1u);
  EXPECT_EQ(Reg.peekForTesting(), 4u);
}

TEST(CampaignRunnerTest, ActivePhasesPostBothFaultKinds) {
  FaultClock Clock;
  CampaignHook Hook(Clock);
  Campaign Plan;
  Plan.Phases = {{/*DurationSec=*/5.0, /*CrashMeanPeriodSec=*/0.01,
                  /*StallMeanPeriodSec=*/0.01, /*StallGrants=*/1}};
  CampaignRunner Runner(Plan, {&Hook});
  Runner.start();
  // 10ms mean periods: ~30 posts per channel in 300ms. Wait for at
  // least one of each rather than asserting a count.
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((Runner.crashesPosted() == 0 || Runner.stallsPosted() == 0) &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Runner.stop();
  EXPECT_GT(Runner.crashesPosted(), 0u);
  EXPECT_GT(Runner.stallsPosted(), 0u);
}

TEST(CampaignRunnerTest, EmptyCampaignNeverStarts) {
  FaultClock Clock;
  CampaignHook Hook(Clock);
  Campaign Plan;
  Plan.Phases = {{1.0, 0, 0, 0}}; // Quiet phase only.
  EXPECT_TRUE(Plan.empty());
  CampaignRunner Runner(Plan, {&Hook});
  Runner.start();
  Runner.stop();
  EXPECT_EQ(Runner.crashesPosted(), 0u);
  EXPECT_EQ(Runner.stallsPosted(), 0u);
}

//===----------------------------------------------------------------------===
// evaluateSlo
//===----------------------------------------------------------------------===

WindowStats conservingWindow(std::uint64_t Index) {
  WindowStats W;
  W.Index = Index;
  W.Conserves = true;
  return W;
}

TEST(SloTest, EmptyPolicyPassesACleanRun) {
  std::vector<WindowStats> Windows;
  Windows.push_back(conservingWindow(0));
  Windows.push_back(conservingWindow(1));
  LatencyHistogram Sojourn;
  LatencyHistogram PathLat[obs::NumPaths + 1];
  const SloVerdict V = evaluateSlo(SloPolicy{}, Windows, Sojourn, PathLat,
                                   /*TotalStuckOps=*/0,
                                   /*TotalArrivals=*/100, /*TotalShed=*/0);
  EXPECT_TRUE(V.Pass);
  EXPECT_TRUE(V.Violations.empty());
}

TEST(SloTest, ConservationFailureIsAlwaysFatal) {
  std::vector<WindowStats> Windows;
  Windows.push_back(conservingWindow(0));
  WindowStats Bad = conservingWindow(1);
  Bad.Conserves = false;
  Windows.push_back(std::move(Bad));
  LatencyHistogram Sojourn;
  LatencyHistogram PathLat[obs::NumPaths + 1];
  const SloVerdict V = evaluateSlo(SloPolicy{}, Windows, Sojourn, PathLat,
                                   0, 100, 0);
  ASSERT_FALSE(V.Pass);
  ASSERT_EQ(V.Violations.size(), 1u);
  EXPECT_EQ(V.Violations[0].Metric, "conservation");
  EXPECT_EQ(V.Violations[0].Window, 1u);
}

TEST(SloTest, DegradedFractionBudgetRespectsWarmup) {
  // Both windows are 80% degraded; only the post-warmup one violates.
  auto degradedWindow = [](std::uint64_t Index) {
    WindowStats W = conservingWindow(Index);
    W.Paths.Paths[static_cast<unsigned>(obs::Path::Degraded)] = 80;
    W.Paths.Paths[static_cast<unsigned>(obs::Path::Lock)] = 20;
    W.Paths.Ops = 100;
    return W;
  };
  std::vector<WindowStats> Windows;
  Windows.push_back(degradedWindow(0));
  Windows.push_back(degradedWindow(1));
  SloPolicy Policy;
  Policy.MaxDegradedFraction = 0.5;
  Policy.WarmupWindows = 1;
  LatencyHistogram Sojourn;
  LatencyHistogram PathLat[obs::NumPaths + 1];
  const SloVerdict V =
      evaluateSlo(Policy, Windows, Sojourn, PathLat, 0, 100, 0);
  ASSERT_FALSE(V.Pass);
  ASSERT_EQ(V.Violations.size(), 1u);
  EXPECT_EQ(V.Violations[0].Metric, "degraded_fraction");
  EXPECT_EQ(V.Violations[0].Window, 1u);
  EXPECT_DOUBLE_EQ(V.Violations[0].Observed, 0.8);
}

TEST(SloTest, LatencyBudgetsFireOnlyForPopulatedPaths) {
  std::vector<WindowStats> Windows;
  Windows.push_back(conservingWindow(0));
  LatencyHistogram Sojourn;
  LatencyHistogram PathLat[obs::NumPaths + 1];
  // Only the Lock path has samples, all at ~1ms.
  const unsigned LockIdx = static_cast<unsigned>(obs::Path::Lock);
  for (int I = 0; I < 1000; ++I) {
    PathLat[LockIdx].record(1'000'000);
    Sojourn.record(2'000'000);
  }
  SloPolicy Policy;
  for (unsigned P = 0; P < obs::NumPaths; ++P)
    Policy.P99BudgetNs[P] = 500'000; // 0.5ms: the Lock path violates.
  Policy.SojournP99BudgetNs = 10'000'000; // 10ms: sojourn is fine.
  const SloVerdict V =
      evaluateSlo(Policy, Windows, Sojourn, PathLat, 0, 100, 0);
  ASSERT_FALSE(V.Pass);
  ASSERT_EQ(V.Violations.size(), 1u);
  EXPECT_EQ(V.Violations[0].Metric,
            std::string("service_p99_ns.") + obs::pathName(obs::Path::Lock));
  EXPECT_TRUE(V.Violations[0].wholeRun());
}

TEST(SloTest, StuckAndShedBudgetsAreWholeRun) {
  std::vector<WindowStats> Windows;
  Windows.push_back(conservingWindow(0));
  LatencyHistogram Sojourn;
  LatencyHistogram PathLat[obs::NumPaths + 1];
  SloPolicy Policy;
  Policy.MaxStuckOps = 0;
  Policy.MaxShedFraction = 0.01;
  const SloVerdict V = evaluateSlo(Policy, Windows, Sojourn, PathLat,
                                   /*TotalStuckOps=*/2,
                                   /*TotalArrivals=*/1000,
                                   /*TotalShed=*/100);
  ASSERT_FALSE(V.Pass);
  ASSERT_EQ(V.Violations.size(), 2u);
  EXPECT_EQ(V.Violations[0].Metric, "stuck_ops");
  EXPECT_EQ(V.Violations[1].Metric, "shed_fraction");
  EXPECT_TRUE(V.Violations[0].wholeRun());
  EXPECT_DOUBLE_EQ(V.Violations[1].Observed, 0.1);
}

//===----------------------------------------------------------------------===
// runSoak: end-to-end smoke
//===----------------------------------------------------------------------===

/// Soak adapter over the crash-tolerant stack, as in bench/BenchCommon.h
/// but local so the test suite does not grow a bench dependency.
struct SoakStackAdapter {
  SoakStackAdapter(std::uint32_t Threads, std::uint32_t Capacity)
      : Stack(Threads, Capacity) {}
  OpOutcome apply(std::uint32_t Tid, bool IsPush, std::uint32_t V,
                  std::uint64_t &) {
    if (IsPush) {
      switch (Stack.push(Tid, V)) {
      case PushResult::Done:
        return OpOutcome::Ok;
      case PushResult::Full:
        return OpOutcome::Full;
      case PushResult::Abort:
        return OpOutcome::Abort;
      }
    }
    const auto R = Stack.pop(Tid);
    if (R.isValue())
      return OpOutcome::Ok;
    return R.isEmpty() ? OpOutcome::Empty : OpOutcome::Abort;
  }
  void prefillOne(std::uint32_t V) { (void)Stack.push(0, V); }
  obs::PathSnapshot pathSnapshot() const { return Stack.pathSnapshot(); }
  obs::Path lastPath(std::uint32_t Tid) const { return Stack.lastPath(Tid); }
  CrashTolerantStack<> Stack;
};

TEST(SoakSmokeTest, ShortRunCompletesConservesAndPasses) {
  SoakConfig Config;
  Config.Workers = 2;
  Config.Capacity = 256;
  Config.PrefillPercent = 50;
  Config.DurationSec = 1.5;
  Config.WindowSec = 0.5;
  Config.Seed = 42;
  Config.OpDeadlineNs = 5ull * 1000 * 1000 * 1000;
  Config.Schedule = ArrivalSchedule::flat(1500);
  Config.Schedule.Keys = 2;
  Config.Schedule.PushPercent = 50;
  // One phase mixing both fault kinds, active for the whole smoke: the
  // resurrection and stall paths are exercised even at test timescales.
  Config.Faults.Phases = {{/*DurationSec=*/10.0, /*CrashMeanPeriodSec=*/0.3,
                           /*StallMeanPeriodSec=*/0.3,
                           /*StallGrants=*/500}};
  // Zero-initialised policy: conservation only — the smoke asserts the
  // harness's bookkeeping, not this host's latency.

  const SoakReport Report = runSoak<SoakStackAdapter>(Config);

  // Three timed windows plus the post-join drain window.
  ASSERT_GE(Report.Windows.size(), 4u);
  EXPECT_GT(Report.TotalArrivals, 0u);
  EXPECT_GT(Report.TotalCompleted, 0u);
  EXPECT_LE(Report.TotalCompleted, Report.TotalArrivals);
  EXPECT_EQ(Report.TotalShed, 0u); // 1500/s is far below saturation.

  for (const WindowStats &W : Report.Windows)
    EXPECT_TRUE(W.Conserves) << "window " << W.Index;
  EXPECT_TRUE(Report.FinalConserves);
  EXPECT_TRUE(Report.Verdict.Pass);

  // After the drain window the backlog is gone and every non-shed,
  // non-abandoned arrival completed.
  EXPECT_EQ(Report.Windows.back().Backlog, 0u);
  EXPECT_GE(Report.TotalCompleted + Report.TotalCrashes,
            Report.TotalArrivals - Report.TotalShed);

  // The run-level histograms saw every completion.
  EXPECT_EQ(Report.RunSojourn.count(), Report.TotalCompleted);
  EXPECT_EQ(Report.RunService.count(), Report.TotalCompleted);
}

TEST(SoakSmokeTest, CampaignCrashesResurrectWorkersAndAreAccounted) {
  SoakConfig Config;
  Config.Workers = 2;
  Config.Capacity = 256;
  Config.DurationSec = 1.0;
  Config.WindowSec = 0.5;
  Config.Seed = 9;
  Config.Schedule = ArrivalSchedule::flat(2000);
  // Crash storm: every ~50ms somebody dies. The run still completes
  // work and still conserves, because every crash abandons at most one
  // entered operation.
  Config.Faults.Phases = {{10.0, /*crash*/ 0.05, 0, 0}};

  const SoakReport Report = runSoak<SoakStackAdapter>(Config);

  EXPECT_GT(Report.TotalCrashes, 0u);
  EXPECT_LE(Report.TotalCrashes, Report.CrashesPosted);
  EXPECT_GT(Report.TotalCompleted, 0u); // Workers kept going after dying.
  EXPECT_TRUE(Report.FinalConserves);
  EXPECT_TRUE(Report.Verdict.Pass);
}

} // namespace
} // namespace csobj
