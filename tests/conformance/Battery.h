//===- tests/conformance/Battery.h - Spec-driven conformance cells -*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conformance battery: every concurrent object in src/core runs
/// through one shared matrix of checks instead of hand-written per-object
/// suites. An object joins the battery by providing a small adapter
/// (make / push / pop / makeSpec) and registering a BatteryEntry; the six
/// cells below are generic over the adapter:
///
///   SpecReplay     solo op sequence crossing Full/Empty edges, every
///                  result validated against the sequential spec
///   LincheckStress randomized multi-thread rounds, each round checked
///                  for linearizability (Wing & Gong)
///   Explore        schedule-space search (exhaustive DFS where the
///                  schedule tree is bounded, random walks otherwise)
///   Chaos          the stress shape under ChaosHook yield/stall noise
///   CrashOrStall   a wall-clock stall-plan round for every entry, plus
///                  mode-specific crash sweeps (lock-free objects, the
///                  crash-tolerant skeleton, the leasable lock)
///   AccessBound    solo shared-access counts (exact for the paper's
///                  documented fast paths, upper bounds elsewhere)
///
/// Crash modes: RAII-locked baselines must never be crash-swept — the
/// SimulatedCrash unwind releases their ScopedLock, and a kill landing in
/// the noexcept unlock would terminate — so lock-based entries get stall
/// plans only, and leasable-lock crash coverage runs as a dedicated
/// non-RAII sweep (leasableLockCrashSweep). TimestampBoost's slow path
/// defers forever to a crashed announced process, so boosted entries are
/// stall-only too.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_TESTS_CONFORMANCE_BATTERY_H
#define CSOBJ_TESTS_CONFORMANCE_BATTERY_H

#include "conformance/Params.h"

#include "baselines/LockedMap.h"
#include "baselines/LockedQueue.h"
#include "baselines/LockedStack.h"
#include "core/AbortableQueue.h"
#include "core/AbortableStack.h"
#include "core/BoxedStack.h"
#include "core/ContentionSensitiveCounter.h"
#include "core/ContentionSensitiveDeque.h"
#include "core/ContentionSensitiveMap.h"
#include "core/ContentionSensitiveQueue.h"
#include "core/ContentionSensitiveStack.h"
#include "core/CrashTolerant.h"
#include "core/CrashTolerantDeque.h"
#include "core/CrashTolerantQueue.h"
#include "core/CrashTolerantStack.h"
#include "core/NonBlockingQueue.h"
#include "core/NonBlockingStack.h"
#include "core/ObstructionFreeDeque.h"
#include "core/Results.h"
#include "core/SkipListCore.h"
#include "core/TimestampBoost.h"
#include "core/UnboundedQueue.h"
#include "core/UnboundedStack.h"
#include "core/WaitFreeUniversal.h"
#include "faults/FaultInjector.h"
#include "faults/FaultPlan.h"
#include "lincheck/Checker.h"
#include "lincheck/History.h"
#include "lincheck/Spec.h"
#include "perf/AdaptiveShardedStack.h"
#include "perf/CombiningObjects.h"
#include "perf/EliminatingStack.h"
#include "perf/ShardedStack.h"
#include "locks/LockTraits.h"
#include "locks/StarvationFreeLock.h"
#include "locks/TasLock.h"
#include "memory/AccessCounter.h"
#include "memory/AtomicRegister.h"
#include "memory/ChaosHook.h"
#include "memory/SchedHook.h"
#include "obs/PathCounters.h"
#include "runtime/SpinBarrier.h"
#include "sched/Explorer.h"
#include "sched/InterleaveScheduler.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace csobj {
namespace conformance {

//===----------------------------------------------------------------------===
// Shared helpers
//===----------------------------------------------------------------------===

/// Runs \p Body under the scheduler, crashing it at its (K+1)-th shared
/// access. Returns the number of decision points, so callers discover an
/// operation's access count by passing a huge K (same contract as the
/// helper in tests/crash_test.cpp).
inline std::size_t runAndCrashAt(std::function<void()> Body,
                                 std::uint32_t K) {
  InterleaveScheduler Scheduler(1);
  const auto Trace = Scheduler.run(
      {std::move(Body)},
      [K](std::size_t Step, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        if (Step == K)
          return Parked.front() | InterleaveScheduler::KillFlag;
        return Parked.front();
      });
  return Trace.Decisions.size();
}

inline std::uint32_t randomValue(SplitMix64 &Rng) {
  return static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1;
}

/// Which asynchrony source a stress round runs under.
enum class AsyncMode { None, Chaos, StallPlan };

//===----------------------------------------------------------------------===
// Push/pop family adapters
//===----------------------------------------------------------------------===
// Contract: using Object; static constexpr bool Strong (ops never abort);
// make(Threads, Capacity); push(Object&, Tid, V) -> PushResult;
// pop(Object&, Tid) -> PopResult<uint32_t>; makeSpec() over SmallCapacity.

struct AbortableStackAdapter {
  using Object = AbortableStack<>;
  static constexpr bool Strong = false;
  static std::unique_ptr<Object> make(std::uint32_t /*Threads*/,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Capacity);
  }
  static PushResult push(Object &O, std::uint32_t /*Tid*/, std::uint32_t V) {
    return O.weakPush(V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t /*Tid*/) {
    return O.weakPop();
  }
  static BoundedStackSpec makeSpec() { return BoundedStackSpec(SmallCapacity); }
};

struct NonBlockingStackAdapter {
  using Object = NonBlockingStack<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t /*Threads*/,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Capacity);
  }
  static PushResult push(Object &O, std::uint32_t /*Tid*/, std::uint32_t V) {
    return O.push(V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t /*Tid*/) {
    return O.pop();
  }
  static BoundedStackSpec makeSpec() { return BoundedStackSpec(SmallCapacity); }
};

struct CsStackAdapter {
  using Object = ContentionSensitiveStack<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  static BoundedStackSpec makeSpec() { return BoundedStackSpec(SmallCapacity); }
};

struct CtStackAdapter {
  using Object = CrashTolerantStack<>;
  using Skeleton = Object::Skeleton;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    // Small patience everywhere: false revocation is linearizable for
    // crash-tolerant objects (linearization points live in the weak
    // C&S), and it buys degraded-path coverage in every cell.
    return std::make_unique<Object>(Threads, Capacity, SmallPatience);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  static BoundedStackSpec makeSpec() { return BoundedStackSpec(SmallCapacity); }

  // Crash-sweep extras.
  static std::unique_ptr<Object> makeForSweep() {
    return std::make_unique<Object>(2, SmallCapacity, SmallPatience);
  }
  static Skeleton &skeleton(Object &O) { return O.skeleton(); }
  static auto forcedSlow(Object &O, std::uint32_t V) {
    return [&O, V, Attempts = 0]() mutable -> std::optional<PushResult> {
      if (Attempts++ == 0)
        return std::nullopt;
      const PushResult R = O.abortable().weakPush(V);
      if (R == PushResult::Abort)
        return std::nullopt;
      return R;
    };
  }
  static std::uint32_t drainCount(Object &O) {
    std::uint32_t Seen = 0;
    while (O.abortable().weakPop().isValue())
      ++Seen;
    return Seen;
  }
};

struct BoxedStackAdapter {
  using Object = BoxedStack<std::uint32_t>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V) ? PushResult::Done : PushResult::Full;
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    const std::optional<std::uint32_t> R = O.pop(Tid);
    return R ? PopResult<std::uint32_t>::value(*R)
             : PopResult<std::uint32_t>::empty();
  }
  static BoundedStackSpec makeSpec() { return BoundedStackSpec(SmallCapacity); }
};

struct BoostedStackAdapter {
  using Object = BoostedStack<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  static BoundedStackSpec makeSpec() { return BoundedStackSpec(SmallCapacity); }
};

struct WaitFreeStackAdapter {
  using Object = WaitFreeStack<SmallCapacity, 8>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    EXPECT_EQ(Capacity, SmallCapacity) << "compile-time capacity";
    return std::make_unique<Object>(Threads);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  static BoundedStackSpec makeSpec() { return BoundedStackSpec(SmallCapacity); }
};

template <typename Lock> struct LockedStackAdapter {
  using Object = LockedStack<Lock>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  static BoundedStackSpec makeSpec() { return BoundedStackSpec(SmallCapacity); }
};

// Unbounded (chunked, hazard-reclaimed) stack. The battery drives it
// well below its envelope, so Full is unreachable — exactly the
// "unbounded" contract — and the spec capacity is the envelope itself.
struct UnboundedStackAdapter {
  using Object = UnboundedStack<>;
  static constexpr bool Strong = false;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t /*Capacity*/) {
    return std::make_unique<Object>(Threads);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.weakPush(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.weakPop(Tid);
  }
  static BoundedStackSpec makeSpec() {
    return BoundedStackSpec(Object::EnvelopeIndex);
  }
};

struct UnboundedCsStackAdapter {
  using Object = ContentionSensitiveUnboundedStack<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t /*Capacity*/) {
    return std::make_unique<Object>(Threads);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  static BoundedStackSpec makeSpec() {
    return BoundedStackSpec(UnboundedStack<>::EnvelopeIndex);
  }
};

struct AbortableQueueAdapter {
  using Object = AbortableQueue<>;
  static constexpr bool Strong = false;
  static std::unique_ptr<Object> make(std::uint32_t /*Threads*/,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Capacity);
  }
  static PushResult push(Object &O, std::uint32_t /*Tid*/, std::uint32_t V) {
    return O.weakEnqueue(V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t /*Tid*/) {
    return O.weakDequeue();
  }
  static BoundedQueueSpec makeSpec() { return BoundedQueueSpec(SmallCapacity); }
};

struct NonBlockingQueueAdapter {
  using Object = NonBlockingQueue<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t /*Threads*/,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Capacity);
  }
  static PushResult push(Object &O, std::uint32_t /*Tid*/, std::uint32_t V) {
    return O.enqueue(V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t /*Tid*/) {
    return O.dequeue();
  }
  static BoundedQueueSpec makeSpec() { return BoundedQueueSpec(SmallCapacity); }
};

struct CsQueueAdapter {
  using Object = ContentionSensitiveQueue<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.enqueue(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.dequeue(Tid);
  }
  static BoundedQueueSpec makeSpec() { return BoundedQueueSpec(SmallCapacity); }
};

struct CtQueueAdapter {
  using Object = CrashTolerantQueue<>;
  using Skeleton = Object::Skeleton;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity, SmallPatience);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.enqueue(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.dequeue(Tid);
  }
  static BoundedQueueSpec makeSpec() { return BoundedQueueSpec(SmallCapacity); }

  static std::unique_ptr<Object> makeForSweep() {
    return std::make_unique<Object>(2, SmallCapacity, SmallPatience);
  }
  static Skeleton &skeleton(Object &O) { return O.skeleton(); }
  static auto forcedSlow(Object &O, std::uint32_t V) {
    return [&O, V, Attempts = 0]() mutable -> std::optional<PushResult> {
      if (Attempts++ == 0)
        return std::nullopt;
      const PushResult R = O.abortable().weakEnqueue(V);
      if (R == PushResult::Abort)
        return std::nullopt;
      return R;
    };
  }
  static std::uint32_t drainCount(Object &O) {
    std::uint32_t Seen = 0;
    while (O.abortable().weakDequeue().isValue())
      ++Seen;
    return Seen;
  }
};

// Unbounded (chunked-ring, hazard-reclaimed) queue. Like the unbounded
// stack, the battery never approaches the envelope, so Full stays
// unreachable and the spec capacity is the envelope.
struct UnboundedQueueAdapter {
  using Object = UnboundedQueue<>;
  static constexpr bool Strong = false;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t /*Capacity*/) {
    return std::make_unique<Object>(Threads);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.weakEnqueue(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.weakDequeue(Tid);
  }
  static BoundedQueueSpec makeSpec() {
    return BoundedQueueSpec(Object::EnvelopeCapacity);
  }
};

struct UnboundedCsQueueAdapter {
  using Object = ContentionSensitiveUnboundedQueue<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t /*Capacity*/) {
    return std::make_unique<Object>(Threads);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.enqueue(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.dequeue(Tid);
  }
  static BoundedQueueSpec makeSpec() {
    return BoundedQueueSpec(UnboundedQueue<>::EnvelopeCapacity);
  }
};

template <typename Lock> struct LockedQueueAdapter {
  using Object = LockedQueue<Lock>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.enqueue(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.dequeue(Tid);
  }
  static BoundedQueueSpec makeSpec() { return BoundedQueueSpec(SmallCapacity); }
};

//===----------------------------------------------------------------------===
// Deque family adapters
//===----------------------------------------------------------------------===
// Contract: push(Object&, Tid, Left, V); pop(Object&, Tid, Left); both
// ends recorded as PushLeft/PushRight/PopLeft/PopRight over the
// positional LinearDequeSpec (SmallCapacity with SmallLeftSlots).

struct OfDequeAdapter {
  using Object = ObstructionFreeDeque;
  static constexpr bool Strong = false;
  static std::unique_ptr<Object> make(std::uint32_t /*Threads*/) {
    return std::make_unique<Object>(SmallCapacity, SmallLeftSlots);
  }
  static PushResult push(Object &O, std::uint32_t /*Tid*/, bool Left,
                         std::uint32_t V) {
    return Left ? O.tryPushLeft(V) : O.tryPushRight(V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t /*Tid*/,
                                      bool Left) {
    return Left ? O.tryPopLeft() : O.tryPopRight();
  }
  static LinearDequeSpec makeSpec() {
    return LinearDequeSpec(SmallCapacity, SmallLeftSlots);
  }
};

struct CsDequeAdapter {
  using Object = ContentionSensitiveDeque<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads) {
    return std::make_unique<Object>(Threads, SmallCapacity, SmallLeftSlots);
  }
  static PushResult push(Object &O, std::uint32_t Tid, bool Left,
                         std::uint32_t V) {
    return Left ? O.pushLeft(Tid, V) : O.pushRight(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid,
                                      bool Left) {
    return Left ? O.popLeft(Tid) : O.popRight(Tid);
  }
  static LinearDequeSpec makeSpec() {
    return LinearDequeSpec(SmallCapacity, SmallLeftSlots);
  }
};

struct CtDequeAdapter {
  using Object = CrashTolerantDeque<>;
  using Skeleton = Object::Skeleton;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads) {
    return std::make_unique<Object>(Threads, SmallCapacity, SmallLeftSlots,
                                    SmallPatience);
  }
  static PushResult push(Object &O, std::uint32_t Tid, bool Left,
                         std::uint32_t V) {
    return Left ? O.pushLeft(Tid, V) : O.pushRight(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid,
                                      bool Left) {
    return Left ? O.popLeft(Tid) : O.popRight(Tid);
  }
  static LinearDequeSpec makeSpec() {
    return LinearDequeSpec(SmallCapacity, SmallLeftSlots);
  }

  // Crash-sweep extras: all slots on the right so the survivor's two
  // healing pushes always fit regardless of whether the corpse's landed.
  static std::unique_ptr<Object> makeForSweep() {
    return std::make_unique<Object>(2, SmallCapacity, /*InitialLeftSlots=*/0,
                                    SmallPatience);
  }
  static Skeleton &skeleton(Object &O) { return O.skeleton(); }
  static auto forcedSlow(Object &O, std::uint32_t V) {
    return [&O, V, Attempts = 0]() mutable -> std::optional<PushResult> {
      if (Attempts++ == 0)
        return std::nullopt;
      const PushResult R = O.abortable().tryPushRight(V);
      if (R == PushResult::Abort)
        return std::nullopt;
      return R;
    };
  }
  static std::uint32_t drainCount(Object &O) {
    std::uint32_t Seen = 0;
    while (O.abortable().tryPopRight().isValue())
      ++Seen;
    return Seen;
  }
};

//===----------------------------------------------------------------------===
// Acceleration-layer adapters (perf/)
//===----------------------------------------------------------------------===
// Tiny elimination arrays (one slot, short spin budget) keep the stress
// rendezvous rate high and the schedule trees small. All four entries are
// stall-plan-only: their contended paths hold a lock or the combiner
// word, so a crash strands waiters by design (see the registry comment).

struct EliminatingCsStackAdapter {
  using Object = EliminatingContentionSensitiveStack<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity, /*SlotCount=*/1,
                                    /*SpinBudget=*/8);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  static BoundedStackSpec makeSpec() { return BoundedStackSpec(SmallCapacity); }
};

struct CombiningStackAdapter {
  using Object = CombiningStack<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  static BoundedStackSpec makeSpec() { return BoundedStackSpec(SmallCapacity); }
};

struct CombiningQueueAdapter {
  using Object = CombiningQueue<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.enqueue(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.dequeue(Tid);
  }
  static BoundedQueueSpec makeSpec() { return BoundedQueueSpec(SmallCapacity); }
};

struct CombiningDequeAdapter {
  using Object = CombiningDeque;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads) {
    return std::make_unique<Object>(Threads, SmallCapacity, SmallLeftSlots);
  }
  static PushResult push(Object &O, std::uint32_t Tid, bool Left,
                         std::uint32_t V) {
    return Left ? O.pushLeft(Tid, V) : O.pushRight(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid,
                                      bool Left) {
    return Left ? O.popLeft(Tid) : O.popRight(Tid);
  }
  static LinearDequeSpec makeSpec() {
    return LinearDequeSpec(SmallCapacity, SmallLeftSlots);
  }
};

struct ShardedStackAdapter {
  using Object = ShardedStack<2>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity, /*SlotCount=*/1,
                                    /*SpinBudget=*/8);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  /// A bag, not a stack: pops return some element (per-shard LIFO only).
  static BoundedBagSpec makeSpec() { return BoundedBagSpec(SmallCapacity); }
};

/// Adaptive facade with the default (bench-cadence) controller: the mask
/// starts at one shard and widens only through op-driven grow-on-full, so
/// this entry certifies that reconfiguration epochs preserve the
/// BoundedBagSpec answers (observable capacity is TotalCapacity from the
/// first operation, Empty spans retired shards).
struct AdaptiveStackAdapter {
  using Object = AdaptiveShardedStack<2>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity, /*InitialShards=*/1,
                                    /*SlotCount=*/1, /*SpinBudget=*/8);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  static BoundedBagSpec makeSpec() { return BoundedBagSpec(SmallCapacity); }
};

/// The same facade with a deliberately twitchy controller (tick every 4
/// ops, act on 8-op deltas, shrink at a 50% shortcut ratio): under the
/// battery's chaos and stall schedules the mask grows AND shrinks many
/// times per round, so conservation and the boundary certificates are
/// exercised across live reconfiguration epochs, not just at quiesce.
struct AdaptiveChurnStackAdapter {
  using Object = AdaptiveShardedStack<2>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    ShardControllerConfig Ctl;
    Ctl.TickOps = 4;
    Ctl.MinDeltaOps = 8;
    Ctl.GrowLockRatio = 0.01;
    Ctl.ShrinkShortcutRatio = 0.5;
    return std::make_unique<Object>(Threads, Capacity, /*InitialShards=*/2,
                                    /*SlotCount=*/1, /*SpinBudget=*/8, Ctl);
  }
  static PushResult push(Object &O, std::uint32_t Tid, std::uint32_t V) {
    return O.push(Tid, V);
  }
  static PopResult<std::uint32_t> pop(Object &O, std::uint32_t Tid) {
    return O.pop(Tid);
  }
  static BoundedBagSpec makeSpec() { return BoundedBagSpec(SmallCapacity); }
};

//===----------------------------------------------------------------------===
// Cell: SpecReplay (solo, every result validated against the spec)
//===----------------------------------------------------------------------===

template <typename A> void specReplayCell() {
  auto Obj = A::make(StressThreads, SmallCapacity);
  auto Spec = A::makeSpec();
  std::uint64_t Clock = 0;

  auto DoPush = [&](std::uint32_t V) {
    const PushResult R = A::push(*Obj, 0, V);
    ASSERT_NE(R, PushResult::Abort) << "solo push aborted";
    Operation Op;
    Op.Tid = 0;
    Op.Code = OpCode::Push;
    Op.Arg = V;
    Op.Result = R == PushResult::Full ? ResCode::Full : ResCode::Done;
    Op.InvokeNs = Clock++;
    Op.ResponseNs = Clock++;
    ASSERT_TRUE(Spec.apply(Op))
        << "push(" << V << ") disagrees with the sequential spec";
  };
  auto DoPop = [&] {
    const PopResult<std::uint32_t> R = A::pop(*Obj, 0);
    ASSERT_FALSE(R.isAbort()) << "solo pop aborted";
    Operation Op;
    Op.Tid = 0;
    Op.Code = OpCode::Pop;
    if (R.isValue()) {
      Op.Result = ResCode::Value;
      Op.RetValue = R.value();
    } else {
      Op.Result = ResCode::Empty;
    }
    Op.InvokeNs = Clock++;
    Op.ResponseNs = Clock++;
    ASSERT_TRUE(Spec.apply(Op)) << "pop disagrees with the sequential spec";
  };

  // Cross the Full edge, then the Empty edge.
  for (std::uint32_t V = 1; V <= SmallCapacity + 2; ++V)
    DoPush(V);
  for (std::uint32_t I = 0; I <= SmallCapacity + 2; ++I)
    DoPop();
  // Random solo mix, still spec-validated at every step.
  SplitMix64 Rng(0xC0FFEEull);
  for (std::uint32_t I = 0; I < 32; ++I) {
    if (Rng.chance(1, 2))
      DoPush(randomValue(Rng));
    else
      DoPop();
  }
}

template <typename A> void dequeSpecReplayCell() {
  auto Obj = A::make(StressThreads);
  auto Spec = A::makeSpec();
  std::uint64_t Clock = 0;

  auto DoPush = [&](bool Left, std::uint32_t V) {
    const PushResult R = A::push(*Obj, 0, Left, V);
    ASSERT_NE(R, PushResult::Abort) << "solo push aborted";
    Operation Op;
    Op.Tid = 0;
    Op.Code = Left ? OpCode::PushLeft : OpCode::PushRight;
    Op.Arg = V;
    Op.Result = R == PushResult::Full ? ResCode::Full : ResCode::Done;
    Op.InvokeNs = Clock++;
    Op.ResponseNs = Clock++;
    ASSERT_TRUE(Spec.apply(Op))
        << (Left ? "pushLeft(" : "pushRight(") << V
        << ") disagrees with the sequential spec";
  };
  auto DoPop = [&](bool Left) {
    const PopResult<std::uint32_t> R = A::pop(*Obj, 0, Left);
    ASSERT_FALSE(R.isAbort()) << "solo pop aborted";
    Operation Op;
    Op.Tid = 0;
    Op.Code = Left ? OpCode::PopLeft : OpCode::PopRight;
    if (R.isValue()) {
      Op.Result = ResCode::Value;
      Op.RetValue = R.value();
    } else {
      Op.Result = ResCode::Empty;
    }
    Op.InvokeNs = Clock++;
    Op.ResponseNs = Clock++;
    ASSERT_TRUE(Spec.apply(Op))
        << (Left ? "popLeft" : "popRight")
        << " disagrees with the sequential spec";
  };

  // Exhaust both ends (positional Full), then drain past Empty.
  for (std::uint32_t V = 1; V <= SmallLeftSlots + 1; ++V)
    DoPush(/*Left=*/true, V);
  for (std::uint32_t V = 10; V <= 10 + (SmallCapacity - SmallLeftSlots); ++V)
    DoPush(/*Left=*/false, V);
  for (std::uint32_t I = 0; I <= SmallCapacity + 1; ++I)
    DoPop(/*Left=*/true);
  // Random solo mix over both ends.
  SplitMix64 Rng(0xDEC0DEull);
  for (std::uint32_t I = 0; I < 32; ++I) {
    const bool Left = Rng.chance(1, 2);
    if (Rng.chance(1, 2))
      DoPush(Left, randomValue(Rng));
    else
      DoPop(Left);
  }
}

//===----------------------------------------------------------------------===
// Cell: LincheckStress / Chaos / stall-plan round (one workhorse)
//===----------------------------------------------------------------------===

/// Metrics-as-oracle: once a crash-free stress round quiesces, an
/// object exposing a path snapshot must satisfy the conservation laws
/// (obs::PathSnapshot::conserves — every entered op retired through
/// exactly one path, pairings balance, degradations have causes), and
/// with metrics compiled in it must have seen every operation the round
/// issued (>= because a sharded facade op enters several skeletons).
/// Entries without metrics skip the check via the requires-gate; note
/// degradations are NOT asserted zero — the small-patience entries
/// legitimately degrade under stress.
template <typename ObjT>
void assertPathConservation(const ObjT &Obj, std::uint32_t Round,
                            std::uint64_t OpsIssued) {
  if constexpr (requires { Obj.pathSnapshot(); }) {
    const obs::PathSnapshot S = Obj.pathSnapshot();
    ASSERT_TRUE(S.conserves())
        << "round " << Round << ": path conservation violated (ops="
        << S.Ops << " pathTotal=" << S.pathTotal()
        << " elimPush=" << S.event(obs::Event::EliminatedPush)
        << " elimPop=" << S.event(obs::Event::EliminatedPop)
        << " degraded=" << S.path(obs::Path::Degraded)
        << " doorwayTO=" << S.event(obs::Event::DoorwayTimeout)
        << " leaseTO=" << S.event(obs::Event::LeaseTimeout) << ")";
    if constexpr (obs::MetricsEnabled) {
      ASSERT_GE(S.Ops, OpsIssued)
          << "round " << Round << ": sink missed operations";
    }
  } else {
    (void)Round;
    (void)OpsIssued;
  }
}

template <typename A> void stressRounds(AsyncMode Mode) {
  const std::uint32_t Rounds =
      Mode == AsyncMode::None ? StressRounds : ChaosRounds;
  for (std::uint32_t Round = 0; Round < Rounds; ++Round) {
    auto Obj = A::make(StressThreads, SmallCapacity);
    std::vector<HistoryRecorder> Recorders;
    for (std::uint32_t T = 0; T < StressThreads; ++T)
      Recorders.emplace_back(T);
    std::atomic<std::uint32_t> Aborts{0};
    SpinBarrier Barrier(StressThreads);
    FaultClock Clock;
    const FaultPlan Plan =
        FaultPlan::stallAt(0, StallPlanAtAccess, StallPlanGrants);

    std::vector<std::thread> Threads;
    for (std::uint32_t T = 0; T < StressThreads; ++T) {
      Threads.emplace_back([&, T] {
        HistoryRecorder &Rec = Recorders[T];
        SplitMix64 Rng(0xBA77E59ull * (Round + 1) + T);
        auto RunOps = [&] {
          Barrier.arriveAndWait();
          for (std::uint32_t I = 0; I < StressOpsPerThread; ++I) {
            const bool IsPush = Rng.chance(1, 2);
            const std::uint32_t V = randomValue(Rng);
            const std::uint64_t T0 = HistoryRecorder::now();
            if (IsPush) {
              const PushResult R = A::push(*Obj, T, V);
              const std::uint64_t T1 = HistoryRecorder::now();
              if (R == PushResult::Abort)
                Aborts.fetch_add(1, std::memory_order_relaxed);
              else
                Rec.recordPush(V, R == PushResult::Full, T0, T1);
            } else {
              const PopResult<std::uint32_t> R = A::pop(*Obj, T);
              const std::uint64_t T1 = HistoryRecorder::now();
              if (R.isAbort())
                Aborts.fetch_add(1, std::memory_order_relaxed);
              else if (R.isValue())
                Rec.recordPopValue(R.value(), T0, T1);
              else
                Rec.recordPopEmpty(T0, T1);
            }
          }
        };
        if (Mode == AsyncMode::Chaos) {
          ChaosHook Hook(0xC4A05ull * (Round + 1) + T, ChaosYieldPermille,
                         ChaosStallPermille, ChaosStallGrants);
          SchedHookScope Scope(Hook);
          RunOps();
        } else if (Mode == AsyncMode::StallPlan) {
          FaultInjector Hook(Plan, T, Clock);
          SchedHookScope Scope(Hook);
          RunOps();
        } else {
          RunOps();
        }
      });
    }
    for (auto &Th : Threads)
      Th.join();

    if (A::Strong)
      ASSERT_EQ(Aborts.load(), 0u)
          << "strong object aborted in round " << Round;
    assertPathConservation(*Obj, Round,
                           std::uint64_t{StressThreads} * StressOpsPerThread);
    const History H = mergeHistories(Recorders);
    ASSERT_TRUE(H.wellFormed());
    const CheckResult Result = checkLinearizable(H, A::makeSpec());
    ASSERT_FALSE(Result.HitSearchCap);
    ASSERT_TRUE(Result.Linearizable)
        << "round " << Round << ": " << Result.FailureNote;
  }
}

template <typename A> void dequeStressRounds(AsyncMode Mode) {
  const std::uint32_t Rounds =
      Mode == AsyncMode::None ? StressRounds : ChaosRounds;
  for (std::uint32_t Round = 0; Round < Rounds; ++Round) {
    auto Obj = A::make(StressThreads);
    std::vector<HistoryRecorder> Recorders;
    for (std::uint32_t T = 0; T < StressThreads; ++T)
      Recorders.emplace_back(T);
    std::atomic<std::uint32_t> Aborts{0};
    SpinBarrier Barrier(StressThreads);
    FaultClock Clock;
    const FaultPlan Plan =
        FaultPlan::stallAt(0, StallPlanAtAccess, StallPlanGrants);

    std::vector<std::thread> Threads;
    for (std::uint32_t T = 0; T < StressThreads; ++T) {
      Threads.emplace_back([&, T] {
        HistoryRecorder &Rec = Recorders[T];
        SplitMix64 Rng(0xD0DECull * (Round + 1) + T);
        auto RunOps = [&] {
          Barrier.arriveAndWait();
          for (std::uint32_t I = 0; I < StressOpsPerThread; ++I) {
            const bool IsPush = Rng.chance(1, 2);
            const bool Left = Rng.chance(1, 2);
            const std::uint32_t V = randomValue(Rng);
            const std::uint64_t T0 = HistoryRecorder::now();
            if (IsPush) {
              const PushResult R = A::push(*Obj, T, Left, V);
              const std::uint64_t T1 = HistoryRecorder::now();
              if (R == PushResult::Abort)
                Aborts.fetch_add(1, std::memory_order_relaxed);
              else
                Rec.recordOp(Left ? OpCode::PushLeft : OpCode::PushRight, V,
                             R == PushResult::Full ? ResCode::Full
                                                   : ResCode::Done,
                             0, T0, T1);
            } else {
              const PopResult<std::uint32_t> R = A::pop(*Obj, T, Left);
              const std::uint64_t T1 = HistoryRecorder::now();
              if (R.isAbort())
                Aborts.fetch_add(1, std::memory_order_relaxed);
              else if (R.isValue())
                Rec.recordOp(Left ? OpCode::PopLeft : OpCode::PopRight, 0,
                             ResCode::Value, R.value(), T0, T1);
              else
                Rec.recordOp(Left ? OpCode::PopLeft : OpCode::PopRight, 0,
                             ResCode::Empty, 0, T0, T1);
            }
          }
        };
        if (Mode == AsyncMode::Chaos) {
          ChaosHook Hook(0xCD0DEull * (Round + 1) + T, ChaosYieldPermille,
                         ChaosStallPermille, ChaosStallGrants);
          SchedHookScope Scope(Hook);
          RunOps();
        } else if (Mode == AsyncMode::StallPlan) {
          FaultInjector Hook(Plan, T, Clock);
          SchedHookScope Scope(Hook);
          RunOps();
        } else {
          RunOps();
        }
      });
    }
    for (auto &Th : Threads)
      Th.join();

    if (A::Strong)
      ASSERT_EQ(Aborts.load(), 0u)
          << "strong deque aborted in round " << Round;
    assertPathConservation(*Obj, Round,
                           std::uint64_t{StressThreads} * StressOpsPerThread);
    const History H = mergeHistories(Recorders);
    ASSERT_TRUE(H.wellFormed());
    const CheckResult Result = checkLinearizable(H, A::makeSpec());
    ASSERT_FALSE(Result.HitSearchCap);
    ASSERT_TRUE(Result.Linearizable)
        << "round " << Round << ": " << Result.FailureNote;
  }
}

//===----------------------------------------------------------------------===
// Cell: Explore (schedule-space search over tiny two-thread scenarios)
//===----------------------------------------------------------------------===

template <typename A>
void drainAndCheck(typename A::Object &Obj,
                   std::vector<HistoryRecorder> &Recs,
                   std::uint32_t Aborted) {
  for (std::uint32_t Guard = 0;; ++Guard) {
    ASSERT_LE(Guard, SmallCapacity + 1u) << "drain did not terminate";
    const std::uint64_t T0 = HistoryRecorder::now();
    const PopResult<std::uint32_t> R = A::pop(Obj, 0);
    const std::uint64_t T1 = HistoryRecorder::now();
    ASSERT_FALSE(R.isAbort()) << "solo drain aborted";
    if (!R.isValue()) {
      Recs[0].recordPopEmpty(T0, T1);
      break;
    }
    Recs[0].recordPopValue(R.value(), T0, T1);
  }
  if (A::Strong)
    ASSERT_EQ(Aborted, 0u);
  const History H = mergeHistories(Recs);
  ASSERT_TRUE(H.wellFormed());
  const CheckResult Result = checkLinearizable(H, A::makeSpec());
  ASSERT_FALSE(Result.HitSearchCap);
  ASSERT_TRUE(Result.Linearizable) << Result.FailureNote;
}

template <typename A> void exploreCell(bool Exhaustive) {
  const auto RunScenario = [&](const ScheduleExplorer::ScenarioFactory &F,
                               std::uint64_t Salt) {
    ScheduleExplorer Explorer;
    const ExploreResult R =
        Exhaustive ? Explorer.exploreAll(F)
                   : Explorer.randomWalks(F, RandomWalkRuns, 0x5EED5ull + Salt);
    EXPECT_GT(R.Runs, 0u);
    EXPECT_EQ(R.CappedRuns, 0u);
    if (Exhaustive)
      EXPECT_TRUE(R.Complete);
  };

  // Two concurrent pushes on an empty object, drained and checked solo.
  RunScenario(
      [] {
        std::shared_ptr<typename A::Object> Obj = A::make(2, SmallCapacity);
        auto Recs = std::make_shared<std::vector<HistoryRecorder>>();
        Recs->emplace_back(0);
        Recs->emplace_back(1);
        auto Aborted = std::make_shared<std::uint32_t>(0);
        ScenarioRun Run;
        for (std::uint32_t T = 0; T < 2; ++T)
          Run.Bodies.push_back([Obj, Recs, Aborted, T] {
            const std::uint32_t V = T + 1;
            const std::uint64_t T0 = HistoryRecorder::now();
            const PushResult R = A::push(*Obj, T, V);
            const std::uint64_t T1 = HistoryRecorder::now();
            if (R == PushResult::Abort)
              ++*Aborted;
            else
              (*Recs)[T].recordPush(V, R == PushResult::Full, T0, T1);
          });
        Run.PostCheck = [Obj, Recs, Aborted] {
          drainAndCheck<A>(*Obj, *Recs, *Aborted);
        };
        return Run;
      },
      1);

  // A push racing a pop on a one-element object.
  RunScenario(
      [] {
        std::shared_ptr<typename A::Object> Obj = A::make(2, SmallCapacity);
        auto Recs = std::make_shared<std::vector<HistoryRecorder>>();
        Recs->emplace_back(0);
        Recs->emplace_back(1);
        auto Aborted = std::make_shared<std::uint32_t>(0);
        {
          const std::uint64_t T0 = HistoryRecorder::now();
          const PushResult R = A::push(*Obj, 0, 9);
          const std::uint64_t T1 = HistoryRecorder::now();
          EXPECT_EQ(R, PushResult::Done);
          (*Recs)[0].recordPush(9, false, T0, T1);
        }
        ScenarioRun Run;
        Run.Bodies.push_back([Obj, Recs, Aborted] {
          const std::uint64_t T0 = HistoryRecorder::now();
          const PushResult R = A::push(*Obj, 0, 1);
          const std::uint64_t T1 = HistoryRecorder::now();
          if (R == PushResult::Abort)
            ++*Aborted;
          else
            (*Recs)[0].recordPush(1, R == PushResult::Full, T0, T1);
        });
        Run.Bodies.push_back([Obj, Recs, Aborted] {
          const std::uint64_t T0 = HistoryRecorder::now();
          const PopResult<std::uint32_t> R = A::pop(*Obj, 1);
          const std::uint64_t T1 = HistoryRecorder::now();
          if (R.isAbort())
            ++*Aborted;
          else if (R.isValue())
            (*Recs)[1].recordPopValue(R.value(), T0, T1);
          else
            (*Recs)[1].recordPopEmpty(T0, T1);
        });
        Run.PostCheck = [Obj, Recs, Aborted] {
          drainAndCheck<A>(*Obj, *Recs, *Aborted);
        };
        return Run;
      },
      2);
}

template <typename A>
void dequeDrainAndCheck(typename A::Object &Obj,
                        std::vector<HistoryRecorder> &Recs,
                        std::uint32_t Aborted) {
  for (std::uint32_t Guard = 0;; ++Guard) {
    ASSERT_LE(Guard, SmallCapacity + 1u) << "drain did not terminate";
    const std::uint64_t T0 = HistoryRecorder::now();
    const PopResult<std::uint32_t> R = A::pop(Obj, 0, /*Left=*/true);
    const std::uint64_t T1 = HistoryRecorder::now();
    ASSERT_FALSE(R.isAbort()) << "solo drain aborted";
    if (!R.isValue()) {
      Recs[0].recordOp(OpCode::PopLeft, 0, ResCode::Empty, 0, T0, T1);
      break;
    }
    Recs[0].recordOp(OpCode::PopLeft, 0, ResCode::Value, R.value(), T0, T1);
  }
  if (A::Strong)
    ASSERT_EQ(Aborted, 0u);
  const History H = mergeHistories(Recs);
  ASSERT_TRUE(H.wellFormed());
  const CheckResult Result = checkLinearizable(H, A::makeSpec());
  ASSERT_FALSE(Result.HitSearchCap);
  ASSERT_TRUE(Result.Linearizable) << Result.FailureNote;
}

template <typename A> void dequeExploreCell(bool Exhaustive) {
  const auto RunScenario = [&](const ScheduleExplorer::ScenarioFactory &F,
                               std::uint64_t Salt) {
    ScheduleExplorer Explorer;
    const ExploreResult R =
        Exhaustive ? Explorer.exploreAll(F)
                   : Explorer.randomWalks(F, RandomWalkRuns, 0xDEC5ull + Salt);
    EXPECT_GT(R.Runs, 0u);
    EXPECT_EQ(R.CappedRuns, 0u);
    if (Exhaustive)
      EXPECT_TRUE(R.Complete);
  };

  // pushLeft racing pushRight on an empty deque.
  RunScenario(
      [] {
        std::shared_ptr<typename A::Object> Obj = A::make(2);
        auto Recs = std::make_shared<std::vector<HistoryRecorder>>();
        Recs->emplace_back(0);
        Recs->emplace_back(1);
        auto Aborted = std::make_shared<std::uint32_t>(0);
        ScenarioRun Run;
        for (std::uint32_t T = 0; T < 2; ++T)
          Run.Bodies.push_back([Obj, Recs, Aborted, T] {
            const bool Left = T == 0;
            const std::uint32_t V = T + 1;
            const std::uint64_t T0 = HistoryRecorder::now();
            const PushResult R = A::push(*Obj, T, Left, V);
            const std::uint64_t T1 = HistoryRecorder::now();
            if (R == PushResult::Abort)
              ++*Aborted;
            else
              (*Recs)[T].recordOp(Left ? OpCode::PushLeft : OpCode::PushRight,
                                  V,
                                  R == PushResult::Full ? ResCode::Full
                                                        : ResCode::Done,
                                  0, T0, T1);
          });
        Run.PostCheck = [Obj, Recs, Aborted] {
          dequeDrainAndCheck<A>(*Obj, *Recs, *Aborted);
        };
        return Run;
      },
      1);

  // pushRight racing popRight on a one-element deque (same end).
  RunScenario(
      [] {
        std::shared_ptr<typename A::Object> Obj = A::make(2);
        auto Recs = std::make_shared<std::vector<HistoryRecorder>>();
        Recs->emplace_back(0);
        Recs->emplace_back(1);
        auto Aborted = std::make_shared<std::uint32_t>(0);
        {
          const std::uint64_t T0 = HistoryRecorder::now();
          const PushResult R = A::push(*Obj, 0, /*Left=*/false, 9);
          const std::uint64_t T1 = HistoryRecorder::now();
          EXPECT_EQ(R, PushResult::Done);
          (*Recs)[0].recordOp(OpCode::PushRight, 9, ResCode::Done, 0, T0, T1);
        }
        ScenarioRun Run;
        Run.Bodies.push_back([Obj, Recs, Aborted] {
          const std::uint64_t T0 = HistoryRecorder::now();
          const PushResult R = A::push(*Obj, 0, /*Left=*/false, 1);
          const std::uint64_t T1 = HistoryRecorder::now();
          if (R == PushResult::Abort)
            ++*Aborted;
          else
            (*Recs)[0].recordOp(OpCode::PushRight, 1,
                                R == PushResult::Full ? ResCode::Full
                                                      : ResCode::Done,
                                0, T0, T1);
        });
        Run.Bodies.push_back([Obj, Recs, Aborted] {
          const std::uint64_t T0 = HistoryRecorder::now();
          const PopResult<std::uint32_t> R = A::pop(*Obj, 1, /*Left=*/false);
          const std::uint64_t T1 = HistoryRecorder::now();
          if (R.isAbort())
            ++*Aborted;
          else if (R.isValue())
            (*Recs)[1].recordOp(OpCode::PopRight, 0, ResCode::Value, R.value(),
                                T0, T1);
          else
            (*Recs)[1].recordOp(OpCode::PopRight, 0, ResCode::Empty, 0, T0,
                                T1);
        });
        Run.PostCheck = [Obj, Recs, Aborted] {
          dequeDrainAndCheck<A>(*Obj, *Recs, *Aborted);
        };
        return Run;
      },
      2);
}

//===----------------------------------------------------------------------===
// Cell: CrashOrStall — mode-specific crash sweeps
//===----------------------------------------------------------------------===

/// Lock-free entries: crash a push (then a pop) at every shared-access
/// point; the survivor completes solo and the crashed operation is
/// all-or-nothing.
template <typename A> void crashSweepCell() {
  std::size_t PushAccesses = 0;
  {
    auto Probe = A::make(StressThreads, SmallCapacity);
    EXPECT_EQ(A::push(*Probe, 0, 1), PushResult::Done);
    PushAccesses =
        runAndCrashAt([&] { (void)A::push(*Probe, 0, 2); }, 100000);
  }
  ASSERT_GT(PushAccesses, 0u);
  for (std::uint32_t K = 0; K < PushAccesses; ++K) {
    auto Obj = A::make(StressThreads, SmallCapacity);
    ASSERT_EQ(A::push(*Obj, 0, 1), PushResult::Done);
    runAndCrashAt([&] { (void)A::push(*Obj, 0, 2); }, K);
    ASSERT_EQ(A::push(*Obj, 1, 3), PushResult::Done)
        << "survivor push blocked; crash point " << K;
    std::uint32_t Seen1 = 0, Seen2 = 0, Seen3 = 0, Total = 0;
    for (std::uint32_t Guard = 0; Guard <= SmallCapacity + 1; ++Guard) {
      const PopResult<std::uint32_t> R = A::pop(*Obj, 1);
      ASSERT_FALSE(R.isAbort()) << "survivor drain aborted; crash point " << K;
      if (!R.isValue())
        break;
      ++Total;
      if (R.value() == 1)
        ++Seen1;
      else if (R.value() == 2)
        ++Seen2;
      else if (R.value() == 3)
        ++Seen3;
    }
    EXPECT_EQ(Seen1, 1u) << "crash point " << K;
    EXPECT_EQ(Seen3, 1u) << "crash point " << K;
    EXPECT_LE(Seen2, 1u) << "crash point " << K;
    EXPECT_EQ(Total, 2u + Seen2)
        << "crashed push must be all-or-nothing; crash point " << K;
  }

  std::size_t PopAccesses = 0;
  {
    auto Probe = A::make(StressThreads, SmallCapacity);
    EXPECT_EQ(A::push(*Probe, 0, 1), PushResult::Done);
    EXPECT_EQ(A::push(*Probe, 0, 2), PushResult::Done);
    PopAccesses = runAndCrashAt([&] { (void)A::pop(*Probe, 0); }, 100000);
  }
  ASSERT_GT(PopAccesses, 0u);
  for (std::uint32_t K = 0; K < PopAccesses; ++K) {
    auto Obj = A::make(StressThreads, SmallCapacity);
    ASSERT_EQ(A::push(*Obj, 0, 1), PushResult::Done);
    ASSERT_EQ(A::push(*Obj, 0, 2), PushResult::Done);
    runAndCrashAt([&] { (void)A::pop(*Obj, 0); }, K);
    ASSERT_EQ(A::push(*Obj, 1, 3), PushResult::Done)
        << "survivor push blocked; crash point " << K;
    std::uint32_t Total = 0, Seen3 = 0;
    for (std::uint32_t Guard = 0; Guard <= SmallCapacity + 1; ++Guard) {
      const PopResult<std::uint32_t> R = A::pop(*Obj, 1);
      ASSERT_FALSE(R.isAbort()) << "survivor drain aborted; crash point " << K;
      if (!R.isValue())
        break;
      ++Total;
      if (R.value() == 3)
        ++Seen3;
    }
    EXPECT_EQ(Seen3, 1u) << "crash point " << K;
    EXPECT_TRUE(Total == 2u || Total == 3u)
        << "crashed pop must be all-or-nothing; crash point " << K
        << " drained " << Total;
  }
}

/// Crash-tolerant entries: generalizes the crash_test slow-path sweep to
/// any CrashTolerant* object — crash a forced-slow operation at every
/// access point; the survivor completes, degrading (degradation counter
/// nonzero) exactly when the corpse held the lease.
template <typename CT> void crashTolerantSweepCell() {
  std::size_t Accesses = 0;
  {
    auto Probe = CT::makeForSweep();
    Accesses = runAndCrashAt(
        [&] {
          (void)CT::skeleton(*Probe).strongApply(0, CT::forcedSlow(*Probe, 7));
        },
        100000);
  }
  ASSERT_GT(Accesses, 10u); // Sanity: the slow path is well past the fast 6.

  for (std::uint32_t K = 0; K < Accesses; ++K) {
    auto Obj = CT::makeForSweep();
    runAndCrashAt(
        [&] {
          (void)CT::skeleton(*Obj).strongApply(0, CT::forcedSlow(*Obj, 7));
        },
        K);
    auto &Skel = CT::skeleton(*Obj);
    const bool CorpseHeldLock = Skel.guard().holderForTesting() == 1;

    const PushResult First = Skel.strongApply(1, CT::forcedSlow(*Obj, 99));
    ASSERT_EQ(First, PushResult::Done) << "crash point " << K;

    const DegradationStats Stats = Skel.statsForTesting();
    if (CorpseHeldLock) {
      EXPECT_EQ(Stats.Degradations, 1u) << "crash point " << K;
      EXPECT_EQ(Stats.Revocations, 1u) << "crash point " << K;
      EXPECT_TRUE(Skel.suspects().isSuspectForTesting(0))
          << "crash point " << K;
    } else {
      EXPECT_EQ(Stats.Degradations, 0u) << "crash point " << K;
      EXPECT_EQ(Stats.ProtectedOps, 1u) << "crash point " << K;
    }

    const PushResult Second = Skel.strongApply(1, CT::forcedSlow(*Obj, 100));
    ASSERT_EQ(Second, PushResult::Done) << "crash point " << K;
    EXPECT_GE(Skel.statsForTesting().ProtectedOps, 1u) << "crash point " << K;
    EXPECT_FALSE(Skel.contentionForTesting()) << "crash point " << K;
    EXPECT_EQ(Skel.guard().holderForTesting(), 0u) << "crash point " << K;
    EXPECT_GE(CT::drainCount(*Obj), 2u) << "crash point " << K;
  }
}

/// HLM deque (lock-free, positional): crash tryPushRight and tryPopLeft
/// at every access point; state stays all-or-nothing and solo survivors
/// never abort.
inline void ofDequeCrashSweep() {
  std::size_t PushAccesses = 0;
  {
    ObstructionFreeDeque Probe(SmallCapacity, SmallLeftSlots);
    PushAccesses =
        runAndCrashAt([&] { (void)Probe.tryPushRight(7); }, 100000);
  }
  ASSERT_GT(PushAccesses, 2u);
  for (std::uint32_t K = 0; K < PushAccesses; ++K) {
    ObstructionFreeDeque Deque(SmallCapacity, SmallLeftSlots);
    runAndCrashAt([&] { (void)Deque.tryPushRight(7); }, K);
    ASSERT_LE(Deque.sizeForTesting(), 1u) << "crash point " << K;
    ASSERT_EQ(Deque.tryPushLeft(5), PushResult::Done) << "crash point " << K;
    ASSERT_EQ(Deque.tryPushRight(6), PushResult::Done) << "crash point " << K;
    const auto Right = Deque.tryPopRight();
    ASSERT_TRUE(Right.isValue()) << "crash point " << K;
    ASSERT_EQ(Right.value(), 6u) << "crash point " << K;
    const auto Left = Deque.tryPopLeft();
    ASSERT_TRUE(Left.isValue()) << "crash point " << K;
    ASSERT_EQ(Left.value(), 5u) << "crash point " << K;
  }

  std::size_t PopAccesses = 0;
  {
    ObstructionFreeDeque Probe(SmallCapacity, SmallLeftSlots);
    ASSERT_EQ(Probe.tryPushLeft(3), PushResult::Done);
    PopAccesses = runAndCrashAt([&] { (void)Probe.tryPopLeft(); }, 100000);
  }
  ASSERT_GT(PopAccesses, 2u);
  for (std::uint32_t K = 0; K < PopAccesses; ++K) {
    ObstructionFreeDeque Deque(SmallCapacity, SmallLeftSlots);
    ASSERT_EQ(Deque.tryPushLeft(3), PushResult::Done);
    runAndCrashAt([&] { (void)Deque.tryPopLeft(); }, K);
    const std::uint32_t Size = Deque.sizeForTesting();
    ASSERT_LE(Size, 1u) << "crash point " << K;
    const auto R = Deque.tryPopLeft();
    if (Size == 1) {
      ASSERT_TRUE(R.isValue()) << "crash point " << K;
      ASSERT_EQ(R.value(), 3u) << "crash point " << K;
    } else {
      ASSERT_FALSE(R.isValue()) << "crash point " << K;
    }
    ASSERT_TRUE(Deque.tryPopLeft().isEmpty()) << "crash point " << K;
  }
}

/// Leasable StarvationFreeLock: non-RAII crash sweep at the lock level
/// (RAII-locked objects cannot be crash-swept — the unwind would release
/// the lock). Victim takes the lock, writes a register, unlocks; crash
/// at every access point. A survivor's unbounded lock() must terminate,
/// revoking the corpse's lease exactly when it held one, and the lock is
/// healed for a third process afterwards.
inline void leasableLockCrashSweep() {
  using LockT = StarvationFreeLock<LeasableTag<16>>;
  std::size_t Accesses = 0;
  {
    LockT Probe(3);
    AtomicRegister<std::uint32_t> Reg;
    Accesses = runAndCrashAt(
        [&] {
          Probe.lock(0);
          Reg.write(1);
          Probe.unlock(0);
        },
        100000);
  }
  ASSERT_GT(Accesses, 3u);

  for (std::uint32_t K = 0; K < Accesses; ++K) {
    LockT Lock(3);
    AtomicRegister<std::uint32_t> Reg;
    runAndCrashAt(
        [&] {
          Lock.lock(0);
          Reg.write(1);
          Lock.unlock(0);
        },
        K);
    const bool CorpseHeldLock = Lock.inner().holderForTesting() == 1;

    // Survivor: the unbounded lock() terminates whatever the corpse left
    // behind (raised flag, parked turn, held lease).
    Lock.lock(1);
    Reg.write(2);
    Lock.unlock(1);
    if (CorpseHeldLock) {
      EXPECT_GE(Lock.inner().revocations(), 1u) << "crash point " << K;
      EXPECT_TRUE(Lock.suspects().isSuspectForTesting(0))
          << "crash point " << K;
    }

    // Healed: a third process acquires cleanly and the lock ends free.
    Lock.lock(2);
    Lock.unlock(2);
    EXPECT_EQ(Lock.inner().holderForTesting(), 0u) << "crash point " << K;
    EXPECT_EQ(Reg.peekForTesting(), 2u) << "crash point " << K;
  }
}

//===----------------------------------------------------------------------===
// Cell: AccessBound (solo shared-access counts)
//===----------------------------------------------------------------------===

struct AccessBounds {
  std::uint32_t Push = 0;
  std::uint32_t Pop = 0;
  bool Exact = false;
};

template <typename A> void accessBoundCell(AccessBounds B) {
  auto Obj = A::make(StressThreads, SmallCapacity);
  const AccessCounts PushCounts =
      countAccesses([&] { (void)A::push(*Obj, 0, 7); });
  const AccessCounts PopCounts = countAccesses([&] { (void)A::pop(*Obj, 0); });
  EXPECT_GT(PushCounts.total(), 0u);
  if (B.Exact) {
    EXPECT_EQ(PushCounts.total(), B.Push);
    EXPECT_EQ(PopCounts.total(), B.Pop);
  } else {
    EXPECT_LE(PushCounts.total(), B.Push);
    EXPECT_LE(PopCounts.total(), B.Pop);
  }
}

template <typename A> void dequeAccessBoundCell(AccessBounds B) {
  auto Obj = A::make(StressThreads);
  const AccessCounts PushCounts =
      countAccesses([&] { (void)A::push(*Obj, 0, /*Left=*/false, 7); });
  const AccessCounts PopCounts =
      countAccesses([&] { (void)A::pop(*Obj, 0, /*Left=*/false); });
  EXPECT_GT(PushCounts.total(), 0u);
  if (B.Exact) {
    EXPECT_EQ(PushCounts.total(), B.Push);
    EXPECT_EQ(PopCounts.total(), B.Pop);
  } else {
    EXPECT_LE(PushCounts.total(), B.Push);
    EXPECT_LE(PopCounts.total(), B.Pop);
  }
}

//===----------------------------------------------------------------------===
// Counter cells (custom: returns are prefix sums, not push/pop codes)
//===----------------------------------------------------------------------===

inline void counterSpecReplayCell() {
  ContentionSensitiveCounter<> C(1);
  std::uint64_t Expect = 0;
  for (std::uint32_t I = 1; I <= 10; ++I) {
    Expect += I;
    EXPECT_EQ(C.add(0, I), Expect);
  }
  EXPECT_EQ(C.valueForTesting(), Expect);
}

/// Unit adds from every thread: linearizability of a counter whose add
/// returns the new value means the returns are exactly {1..total}.
inline void counterStressRounds(AsyncMode Mode) {
  const std::uint32_t Rounds =
      Mode == AsyncMode::None ? StressRounds : ChaosRounds;
  for (std::uint32_t Round = 0; Round < Rounds; ++Round) {
    ContentionSensitiveCounter<> C(StressThreads);
    std::vector<std::vector<std::uint64_t>> Returns(StressThreads);
    SpinBarrier Barrier(StressThreads);
    FaultClock Clock;
    const FaultPlan Plan =
        FaultPlan::stallAt(0, StallPlanAtAccess, StallPlanGrants);

    std::vector<std::thread> Threads;
    for (std::uint32_t T = 0; T < StressThreads; ++T) {
      Threads.emplace_back([&, T] {
        auto RunOps = [&] {
          Barrier.arriveAndWait();
          for (std::uint32_t I = 0; I < StressOpsPerThread; ++I)
            Returns[T].push_back(C.add(T, 1));
        };
        if (Mode == AsyncMode::Chaos) {
          ChaosHook Hook(0xC07EFull * (Round + 1) + T, ChaosYieldPermille,
                         ChaosStallPermille, ChaosStallGrants);
          SchedHookScope Scope(Hook);
          RunOps();
        } else if (Mode == AsyncMode::StallPlan) {
          FaultInjector Hook(Plan, T, Clock);
          SchedHookScope Scope(Hook);
          RunOps();
        } else {
          RunOps();
        }
      });
    }
    for (auto &Th : Threads)
      Th.join();

    std::vector<std::uint64_t> All;
    for (const auto &Per : Returns)
      All.insert(All.end(), Per.begin(), Per.end());
    std::sort(All.begin(), All.end());
    ASSERT_EQ(All.size(),
              static_cast<std::size_t>(StressThreads) * StressOpsPerThread);
    for (std::size_t I = 0; I < All.size(); ++I)
      ASSERT_EQ(All[I], I + 1) << "round " << Round;
    EXPECT_EQ(C.valueForTesting(), All.size());
  }
}

inline void counterExploreCell() {
  const auto Factory = [] {
    auto Obj = std::make_shared<ContentionSensitiveCounter<>>(2);
    auto Returns = std::make_shared<std::vector<std::uint64_t>>();
    ScenarioRun Run;
    for (std::uint32_t T = 0; T < 2; ++T)
      Run.Bodies.push_back([Obj, Returns, T] {
        // The scheduler serializes bodies between accesses, so the
        // shared vector needs no extra synchronization.
        for (std::uint32_t I = 0; I < 2; ++I)
          Returns->push_back(Obj->add(T, 1));
      });
    Run.PostCheck = [Obj, Returns] {
      std::vector<std::uint64_t> Sorted = *Returns;
      std::sort(Sorted.begin(), Sorted.end());
      ASSERT_EQ(Sorted.size(), 4u);
      for (std::size_t I = 0; I < Sorted.size(); ++I)
        ASSERT_EQ(Sorted[I], I + 1);
      ASSERT_EQ(Obj->valueForTesting(), 4u);
    };
    return Run;
  };
  ScheduleExplorer Explorer;
  const ExploreResult R =
      Explorer.randomWalks(Factory, RandomWalkRuns, 0xC07E5ull);
  EXPECT_GT(R.Runs, 0u);
  EXPECT_EQ(R.CappedRuns, 0u);
}

inline void counterAccessBoundCell() {
  ContentionSensitiveCounter<> C(StressThreads);
  // Paper Theorem: a solo add costs 1 CONTENTION read + the 2-access
  // weak add — 3 shared accesses, exactly.
  EXPECT_EQ(countAccesses([&] { (void)C.add(0, 1); }).total(), 3u);
}

//===----------------------------------------------------------------------===
// Ordered-map cells (custom: keyed get/insert/erase over OrderedMapSpec)
//===----------------------------------------------------------------------===
// Adapter contract: using Object; static constexpr bool Strong;
// make(Threads, Capacity); get/insert/erase(Object&, Tid, Key[, Value]).
// Concurrent cells run over MapStressKeys keys against MapCapacity so the
// racy capacity edge stays unreachable (Params.h); the sequential replay
// cell crosses the Full and erase-frees-capacity edges at SmallCapacity.

struct CsMapAdapter {
  using Object = ContentionSensitiveMap<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity, MapRegions);
  }
  static PopResult<std::uint32_t> get(Object &O, std::uint32_t Tid,
                                      std::uint32_t K) {
    return O.get(Tid, K);
  }
  static PushResult insert(Object &O, std::uint32_t Tid, std::uint32_t K,
                           std::uint32_t V) {
    return O.insert(Tid, K, V);
  }
  static PopResult<std::uint32_t> erase(Object &O, std::uint32_t Tid,
                                        std::uint32_t K) {
    return O.erase(Tid, K);
  }
};

struct LockedMapAdapter {
  using Object = LockedMap<>;
  static constexpr bool Strong = true;
  static std::unique_ptr<Object> make(std::uint32_t Threads,
                                      std::uint32_t Capacity) {
    return std::make_unique<Object>(Threads, Capacity);
  }
  static PopResult<std::uint32_t> get(Object &O, std::uint32_t Tid,
                                      std::uint32_t K) {
    return O.get(Tid, K);
  }
  static PushResult insert(Object &O, std::uint32_t Tid, std::uint32_t K,
                           std::uint32_t V) {
    return O.insert(Tid, K, V);
  }
  static PopResult<std::uint32_t> erase(Object &O, std::uint32_t Tid,
                                        std::uint32_t K) {
    return O.erase(Tid, K);
  }
};

/// Records one completed map operation (map ops never abort through the
/// strong interface; weak aborts are absorbed by the Fig-3 skeleton).
inline void recordMapInsert(HistoryRecorder &Rec, std::uint32_t K,
                            std::uint32_t V, PushResult R, std::uint64_t T0,
                            std::uint64_t T1) {
  Rec.recordOp(OpCode::Insert, K,
               R == PushResult::Full ? ResCode::Full : ResCode::Done, V, T0,
               T1);
}

inline void recordMapValueOp(HistoryRecorder &Rec, OpCode Code,
                             std::uint32_t K,
                             const PopResult<std::uint32_t> &R,
                             std::uint64_t T0, std::uint64_t T1) {
  Rec.recordOp(Code, K, R.isValue() ? ResCode::Value : ResCode::Empty,
               R.isValue() ? R.value() : 0, T0, T1);
}

/// Solo replay crossing every sequential edge of the ordered-map spec:
/// miss, fresh insert, update, erase, reinsert-after-erase, the
/// live-key Full boundary, update-at-capacity, and the erase-frees-
/// exactly-one-slot rule — every answer validated against
/// OrderedMapSpec.
template <typename A> void mapSpecReplayCell() {
  auto Obj = A::make(1, SmallCapacity);
  OrderedMapSpec Spec(SmallCapacity);

  const auto Insert = [&](std::uint32_t K, std::uint32_t V,
                          PushResult Want) {
    const PushResult R = A::insert(*Obj, 0, K, V);
    EXPECT_EQ(R, Want) << "insert(" << K << ", " << V << ")";
    ASSERT_NE(R, PushResult::Abort);
    Operation Op;
    Op.Code = OpCode::Insert;
    Op.Arg = K;
    Op.RetValue = V;
    Op.Result = R == PushResult::Full ? ResCode::Full : ResCode::Done;
    ASSERT_TRUE(Spec.apply(Op)) << "spec rejected insert(" << K << ")";
  };
  const auto ValueOp = [&](OpCode Code, std::uint32_t K,
                           std::optional<std::uint32_t> Want) {
    const PopResult<std::uint32_t> R = Code == OpCode::Get
                                           ? A::get(*Obj, 0, K)
                                           : A::erase(*Obj, 0, K);
    ASSERT_FALSE(R.isAbort());
    if (Want.has_value()) {
      ASSERT_TRUE(R.isValue()) << "op(" << K << ") found nothing";
      EXPECT_EQ(R.value(), *Want);
    } else {
      EXPECT_TRUE(R.isEmpty()) << "op(" << K << ") found " << R.value();
    }
    Operation Op;
    Op.Code = Code;
    Op.Arg = K;
    Op.Result = R.isValue() ? ResCode::Value : ResCode::Empty;
    Op.RetValue = R.isValue() ? R.value() : 0;
    ASSERT_TRUE(Spec.apply(Op)) << "spec rejected keyed op on " << K;
  };

  ValueOp(OpCode::Get, 5, std::nullopt);   // miss on empty
  ValueOp(OpCode::Erase, 5, std::nullopt); // erase miss
  Insert(1, 11, PushResult::Done);         // fresh
  Insert(2, 22, PushResult::Done);
  Insert(1, 12, PushResult::Done);         // update
  ValueOp(OpCode::Get, 1, 12);
  ValueOp(OpCode::Erase, 1, 12);           // physical removal
  ValueOp(OpCode::Get, 1, std::nullopt);
  Insert(1, 13, PushResult::Done);         // reinsert after erase
  ValueOp(OpCode::Get, 1, 13);
  Insert(3, 33, PushResult::Done);
  Insert(4, 44, PushResult::Done);         // Live = {1,2,3,4} == capacity
  Insert(5, 55, PushResult::Full);         // fresh key at the boundary
  Insert(2, 23, PushResult::Done);         // update at capacity
  ValueOp(OpCode::Erase, 2, 23);           // frees exactly one slot
  Insert(5, 55, PushResult::Done);         // erase freed capacity
  Insert(2, 24, PushResult::Full);         // full again; 2 is gone now
  ValueOp(OpCode::Get, 2, std::nullopt);
  ValueOp(OpCode::Get, 5, 55);
  if constexpr (requires { Obj->sizeForTesting(); })
    EXPECT_EQ(Obj->sizeForTesting(), 4u);
  assertPathConservation(*Obj, 0, 19);
}

/// Randomized keyed rounds (the stress workhorse shape over
/// get/insert/erase), each round checked for linearizability against
/// OrderedMapSpec and for path conservation.
template <typename A> void mapStressRounds(AsyncMode Mode) {
  const std::uint32_t Rounds =
      Mode == AsyncMode::None ? StressRounds : ChaosRounds;
  for (std::uint32_t Round = 0; Round < Rounds; ++Round) {
    auto Obj = A::make(StressThreads, MapCapacity);
    std::vector<HistoryRecorder> Recorders;
    for (std::uint32_t T = 0; T < StressThreads; ++T)
      Recorders.emplace_back(T);
    SpinBarrier Barrier(StressThreads);
    FaultClock Clock;
    const FaultPlan Plan =
        FaultPlan::stallAt(0, StallPlanAtAccess, StallPlanGrants);

    std::vector<std::thread> Threads;
    for (std::uint32_t T = 0; T < StressThreads; ++T) {
      Threads.emplace_back([&, T] {
        SplitMix64 Rng(0x3A9D0ull * (Round + 1) + T);
        auto RunOps = [&] {
          Barrier.arriveAndWait();
          for (std::uint32_t I = 0; I < StressOpsPerThread; ++I) {
            const std::uint32_t K =
                static_cast<std::uint32_t>(Rng.below(MapStressKeys));
            const std::uint64_t Kind = Rng.below(4);
            const std::uint64_t T0 = HistoryRecorder::now();
            if (Kind < 2) {
              const PopResult<std::uint32_t> R = A::get(*Obj, T, K);
              recordMapValueOp(Recorders[T], OpCode::Get, K, R, T0,
                               HistoryRecorder::now());
            } else if (Kind == 2) {
              const std::uint32_t V = randomValue(Rng);
              const PushResult R = A::insert(*Obj, T, K, V);
              recordMapInsert(Recorders[T], K, V, R, T0,
                              HistoryRecorder::now());
            } else {
              const PopResult<std::uint32_t> R = A::erase(*Obj, T, K);
              recordMapValueOp(Recorders[T], OpCode::Erase, K, R, T0,
                               HistoryRecorder::now());
            }
          }
        };
        if (Mode == AsyncMode::Chaos) {
          ChaosHook Hook(0x9AB5Eull * (Round + 1) + T, ChaosYieldPermille,
                         ChaosStallPermille, ChaosStallGrants);
          SchedHookScope Scope(Hook);
          RunOps();
        } else if (Mode == AsyncMode::StallPlan) {
          FaultInjector Hook(Plan, T, Clock);
          SchedHookScope Scope(Hook);
          RunOps();
        } else {
          RunOps();
        }
      });
    }
    for (auto &Th : Threads)
      Th.join();

    assertPathConservation(
        *Obj, Round,
        static_cast<std::uint64_t>(StressThreads) * StressOpsPerThread);
    if (::testing::Test::HasFatalFailure())
      return;
    History H = mergeHistories(Recorders);
    ASSERT_TRUE(H.wellFormed());
    OrderedMapSpec Spec(MapCapacity);
    const CheckResult R = checkLinearizable(H, Spec);
    ASSERT_FALSE(R.HitSearchCap) << "round " << Round;
    ASSERT_TRUE(R.Linearizable)
        << "round " << Round << ": " << R.FailureNote << "\n"
        << H.describe();
  }
}

/// Schedule-space random walks over the two conflict shapes that matter:
/// two writers in the same key region (doorway serialization) and an
/// insert racing an erase of the same key (ValState CAS interference),
/// with a concurrent reader in both. Every walk's history must
/// linearize.
template <typename A> void mapExploreCell() {
  // Keys 0 and MapRegions share region 0 under `key % MapRegions`.
  const auto Scenario = [](std::uint32_t KeyA, std::uint32_t KeyB,
                           bool EraseRace) {
    return [KeyA, KeyB, EraseRace] {
      auto Obj = std::shared_ptr<typename A::Object>(
          A::make(3, MapCapacity).release());
      auto Recs = std::make_shared<std::vector<HistoryRecorder>>();
      for (std::uint32_t T = 0; T < 3; ++T)
        Recs->emplace_back(T);
      ScenarioRun Run;
      Run.Bodies.push_back([Obj, Recs, KeyA] {
        const std::uint64_t T0 = HistoryRecorder::now();
        const PushResult R = A::insert(*Obj, 0, KeyA, 11);
        recordMapInsert((*Recs)[0], KeyA, 11, R, T0,
                        HistoryRecorder::now());
      });
      Run.Bodies.push_back([Obj, Recs, KeyA, KeyB, EraseRace] {
        const std::uint64_t T0 = HistoryRecorder::now();
        if (EraseRace) {
          const PopResult<std::uint32_t> R = A::erase(*Obj, 1, KeyA);
          recordMapValueOp((*Recs)[1], OpCode::Erase, KeyA, R, T0,
                           HistoryRecorder::now());
        } else {
          const PushResult R = A::insert(*Obj, 1, KeyB, 22);
          recordMapInsert((*Recs)[1], KeyB, 22, R, T0,
                          HistoryRecorder::now());
        }
      });
      Run.Bodies.push_back([Obj, Recs, KeyA] {
        const std::uint64_t T0 = HistoryRecorder::now();
        const PopResult<std::uint32_t> R = A::get(*Obj, 2, KeyA);
        recordMapValueOp((*Recs)[2], OpCode::Get, KeyA, R, T0,
                         HistoryRecorder::now());
      });
      Run.PostCheck = [Obj, Recs] {
        History H = mergeHistories(*Recs);
        ASSERT_TRUE(H.wellFormed());
        OrderedMapSpec Spec(MapCapacity);
        const CheckResult R = checkLinearizable(H, Spec);
        ASSERT_FALSE(R.HitSearchCap);
        ASSERT_TRUE(R.Linearizable) << R.FailureNote << "\n"
                                    << H.describe();
        assertPathConservation(*Obj, 0, 3);
      };
      return Run;
    };
  };
  ScheduleExplorer Explorer;
  const ExploreResult Writers = Explorer.randomWalks(
      Scenario(0, MapRegions, /*EraseRace=*/false), RandomWalkRuns,
      0x3A9E1ull);
  EXPECT_GT(Writers.Runs, 0u);
  EXPECT_EQ(Writers.CappedRuns, 0u);
  const ExploreResult Race = Explorer.randomWalks(
      Scenario(0, MapRegions, /*EraseRace=*/true), RandomWalkRuns,
      0x3A9E2ull);
  EXPECT_GT(Race.Runs, 0u);
  EXPECT_EQ(Race.CappedRuns, 0u);
}

/// Solo access bounds for the four op shapes. Exact for the cs-map: the
/// search reads MaxLevel links top-down (one per level on a tiny map),
/// so with a height-1 key
///   get            = 8 search + 1 ValState read               =  9
///   insert (fresh) = 1 CONTENTION + 8 search + 1 admission
///                    read + 1 link C&S (allocation and init of
///                    unreachable storage are uncounted)         = 11
///   insert (update)= 1 CONTENTION + 8 search + 1 read + 1 C&S = 11
///   erase          = 1 CONTENTION + 8 search + 1 read + 1 C&S = 11
///                    (physical removal is uncounted reclamation)
/// — the map's constant-solo-cost analogue of the stack's 6.
struct MapAccessBounds {
  std::uint64_t Get = 0;
  std::uint64_t InsertFresh = 0;
  std::uint64_t Update = 0;
  std::uint64_t Erase = 0;
  bool Exact = false;
};

template <typename A> void mapAccessBoundCell(MapAccessBounds B) {
  auto Obj = A::make(StressThreads, MapCapacity);
  // A deterministic height-1 key keeps the fresh-insert count minimal.
  std::uint32_t K = 0;
  while (SkipListCore<>::heightOf(K) != 1)
    ++K;
  const std::uint64_t Fresh =
      countAccesses([&] { (void)A::insert(*Obj, 0, K, 7); }).total();
  const std::uint64_t Get =
      countAccesses([&] { (void)A::get(*Obj, 0, K); }).total();
  const std::uint64_t Update =
      countAccesses([&] { (void)A::insert(*Obj, 0, K, 8); }).total();
  const std::uint64_t Erase =
      countAccesses([&] { (void)A::erase(*Obj, 0, K); }).total();
  if (B.Exact) {
    EXPECT_EQ(Fresh, B.InsertFresh);
    EXPECT_EQ(Get, B.Get);
    EXPECT_EQ(Update, B.Update);
    EXPECT_EQ(Erase, B.Erase);
  } else {
    EXPECT_LE(Fresh, B.InsertFresh);
    EXPECT_LE(Get, B.Get);
    EXPECT_LE(Update, B.Update);
    EXPECT_LE(Erase, B.Erase);
  }
}

/// Crash sweep over the cs-map's *shortcut* shapes (fresh insert,
/// update, erase). A solo update never aborts, so it never reaches the
/// region's doorway+lock — every crash point below lands in lock-free
/// code and the survivor must find the key all-or-nothing and retain
/// full use of the key's region. (A crash *inside* the region lock is
/// the documented stall-only class — map_test pins that boundary with a
/// directed schedule; conservation is not asserted here because a
/// killed op books its entry but no terminal path.)
inline void mapCrashSweep() {
  using Map = ContentionSensitiveMap<>;
  constexpr std::uint32_t K = 0;
  constexpr std::uint32_t K2 = K + MapRegions; // same region as K

  const auto SurvivorOwnsRegion = [&](Map &M) {
    ASSERT_EQ(M.insert(1, K2, 99u), PushResult::Done);
    const PopResult<std::uint32_t> G = M.get(1, K2);
    ASSERT_TRUE(G.isValue());
    EXPECT_EQ(G.value(), 99u);
    ASSERT_TRUE(M.erase(1, K2).isValue());
  };

  // Fresh-insert sweep: get(K) afterwards sees the value or nothing.
  const std::size_t FreshAccesses = runAndCrashAt(
      [] {
        Map M(2, MapCapacity, MapRegions);
        (void)M.insert(0, K, 7);
      },
      100000);
  ASSERT_GT(FreshAccesses, 0u);
  for (std::size_t C = 0; C < FreshAccesses; ++C) {
    Map M(2, MapCapacity, MapRegions);
    runAndCrashAt([&M] { (void)M.insert(0, K, 7); },
                  static_cast<std::uint32_t>(C));
    const PopResult<std::uint32_t> G = M.get(1, K);
    if (G.isValue())
      EXPECT_EQ(G.value(), 7u) << "crash at " << C << " tore the insert";
    ASSERT_EQ(M.insert(1, K, 8), PushResult::Done) << "crash at " << C;
    ASSERT_TRUE(M.get(1, K).isValue());
    SurvivorOwnsRegion(M);
    if (::testing::Test::HasFatalFailure())
      return;
  }

  // Update sweep: the old or the new value, never a mix.
  const std::size_t UpdateAccesses = runAndCrashAt(
      [] {
        Map M(2, MapCapacity, MapRegions);
        (void)M.insert(1, K, 7);
        (void)M.insert(0, K, 9);
      },
      100000);
  const std::size_t PrefillAccesses = runAndCrashAt(
      [] {
        Map M(2, MapCapacity, MapRegions);
        (void)M.insert(1, K, 7);
      },
      100000);
  for (std::size_t C = PrefillAccesses; C < UpdateAccesses; ++C) {
    Map M(2, MapCapacity, MapRegions);
    ASSERT_EQ(M.insert(1, K, 7), PushResult::Done);
    runAndCrashAt([&M] { (void)M.insert(0, K, 9); },
                  static_cast<std::uint32_t>(C));
    const PopResult<std::uint32_t> G = M.get(1, K);
    ASSERT_TRUE(G.isValue()) << "crash at " << C << " lost the key";
    EXPECT_TRUE(G.value() == 7u || G.value() == 9u)
        << "crash at " << C << " tore the update: " << G.value();
    SurvivorOwnsRegion(M);
    if (::testing::Test::HasFatalFailure())
      return;
  }

  // Erase sweep: the value or a tombstone; a revive still works.
  for (std::size_t C = PrefillAccesses; C < UpdateAccesses; ++C) {
    Map M(2, MapCapacity, MapRegions);
    ASSERT_EQ(M.insert(1, K, 7), PushResult::Done);
    runAndCrashAt([&M] { (void)M.erase(0, K); },
                  static_cast<std::uint32_t>(C));
    const PopResult<std::uint32_t> G = M.get(1, K);
    if (G.isValue())
      EXPECT_EQ(G.value(), 7u) << "crash at " << C << " tore the erase";
    ASSERT_EQ(M.insert(1, K, 8), PushResult::Done);
    const PopResult<std::uint32_t> After = M.get(1, K);
    ASSERT_TRUE(After.isValue());
    EXPECT_EQ(After.value(), 8u);
    SurvivorOwnsRegion(M);
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

//===----------------------------------------------------------------------===
// Spec point: an eliminated pair linearizes back-to-back, off TOP
//===----------------------------------------------------------------------===

/// The acceleration layer's headline claim, pinned by a directed
/// schedule: when a push and a pop meet in the elimination array, the
/// pair linearizes as push immediately followed by pop at the matcher's
/// gate read, the pop returns exactly the pushed value, and TOP is never
/// touched (its <index, value, seqnb> triple is bit-identical before and
/// after). forceRescueForTesting routes both operations through the
/// rendezvous first so the slot accesses are the leading accesses and
/// the schedule below is exact: the popper gets two accesses (slot read,
/// park C&S), then the pusher runs to completion (slot read sees the
/// parked taker, gate read of TOP, match C&S), then the popper drains.
inline void eliminationPairSpecPoint() {
  using Stack = EliminatingContentionSensitiveStack<>;
  {
    Stack S(2, SmallCapacity, /*SlotCount=*/1, /*SpinBudget=*/8);
    ASSERT_EQ(S.push(0, 3), PushResult::Done); // seed: TOP = <1, 3, _>
    S.forceRescueForTesting(true);
    const auto Before = S.abortable().topForTesting();

    std::optional<PushResult> PushRes;
    std::optional<PopResult<std::uint32_t>> PopRes;
    std::uint32_t PopGrants = 0;
    InterleaveScheduler Scheduler(2);
    Scheduler.run(
        {[&] { PushRes = S.push(0, 7); }, [&] { PopRes = S.pop(1); }},
        [&](std::size_t, const std::vector<std::uint32_t> &Parked)
            -> std::uint32_t {
          const bool HasPush =
              std::find(Parked.begin(), Parked.end(), 0u) != Parked.end();
          const bool HasPop =
              std::find(Parked.begin(), Parked.end(), 1u) != Parked.end();
          if (PopGrants < 2 && HasPop) {
            ++PopGrants;
            return 1;
          }
          if (HasPush)
            return 0;
          return Parked.front();
        });

    ASSERT_TRUE(PushRes.has_value());
    EXPECT_EQ(*PushRes, PushResult::Done);
    ASSERT_TRUE(PopRes.has_value());
    ASSERT_TRUE(PopRes->isValue());
    EXPECT_EQ(PopRes->value(), 7u) << "pop must return the eliminated value";
    // Both operations finished via the rendezvous (the counter counts
    // operations, so a matched pair contributes two).
    EXPECT_EQ(S.eliminationExchangesForTesting(), 2u);
    const auto After = S.abortable().topForTesting();
    EXPECT_EQ(After.Index, Before.Index) << "eliminated pair touched TOP";
    EXPECT_EQ(After.Value, Before.Value) << "eliminated pair touched TOP";
    EXPECT_EQ(After.Seq, Before.Seq) << "eliminated pair touched TOP";
    EXPECT_EQ(S.sizeForTesting(), 1u);
  }

  // The same rendezvous under unconstrained random walks: every walk
  // stays linearizable and a healthy fraction eliminates.
  std::uint64_t TotalExchanges = 0;
  const auto Factory = [&TotalExchanges] {
    auto Obj = std::make_shared<Stack>(2, SmallCapacity, /*SlotCount=*/1,
                                       /*SpinBudget=*/8);
    Obj->forceRescueForTesting(true);
    auto Recs = std::make_shared<std::vector<HistoryRecorder>>();
    Recs->emplace_back(0);
    Recs->emplace_back(1);
    auto Aborted = std::make_shared<std::uint32_t>(0);
    ScenarioRun Run;
    Run.Bodies.push_back([Obj, Recs, Aborted] {
      const std::uint64_t T0 = HistoryRecorder::now();
      const PushResult R = Obj->push(0, 7);
      const std::uint64_t T1 = HistoryRecorder::now();
      if (R == PushResult::Abort)
        ++*Aborted;
      else
        (*Recs)[0].recordPush(7, R == PushResult::Full, T0, T1);
    });
    Run.Bodies.push_back([Obj, Recs, Aborted] {
      const std::uint64_t T0 = HistoryRecorder::now();
      const PopResult<std::uint32_t> R = Obj->pop(1);
      const std::uint64_t T1 = HistoryRecorder::now();
      if (R.isAbort())
        ++*Aborted;
      else if (R.isValue())
        (*Recs)[1].recordPopValue(R.value(), T0, T1);
      else
        (*Recs)[1].recordPopEmpty(T0, T1);
    });
    Run.PostCheck = [Obj, Recs, Aborted, &TotalExchanges] {
      TotalExchanges += Obj->eliminationExchangesForTesting();
      drainAndCheck<EliminatingCsStackAdapter>(*Obj, *Recs, *Aborted);
    };
    return Run;
  };
  ScheduleExplorer Explorer;
  const ExploreResult R =
      Explorer.randomWalks(Factory, RandomWalkRuns, 0xE71Aull);
  EXPECT_GT(R.Runs, 0u);
  EXPECT_EQ(R.CappedRuns, 0u);
  EXPECT_GT(TotalExchanges, 0u)
      << "no random walk ever eliminated a pair";
}

//===----------------------------------------------------------------------===
// Registry
//===----------------------------------------------------------------------===

/// One object's row in the battery matrix: a display name, the src/core
/// headers it certifies (the registry-exhaustiveness test requires every
/// core header to appear in some entry), and the six cells.
struct BatteryEntry {
  std::string Name;
  std::vector<std::string> CoveredHeaders;
  std::function<void()> SpecReplay;
  std::function<void()> LincheckStress;
  std::function<void()> Explore;
  std::function<void()> Chaos;
  std::function<void()> CrashOrStall;
  std::function<void()> AccessBound;
};

template <typename A>
BatteryEntry pushPopEntry(std::string Name,
                          std::vector<std::string> Headers, bool Exhaustive,
                          AccessBounds Bounds,
                          std::function<void()> ExtraCrash = nullptr) {
  BatteryEntry E;
  E.Name = std::move(Name);
  E.CoveredHeaders = std::move(Headers);
  E.SpecReplay = [] { specReplayCell<A>(); };
  E.LincheckStress = [] { stressRounds<A>(AsyncMode::None); };
  E.Explore = [Exhaustive] { exploreCell<A>(Exhaustive); };
  E.Chaos = [] { stressRounds<A>(AsyncMode::Chaos); };
  E.CrashOrStall = [Extra = std::move(ExtraCrash)] {
    stressRounds<A>(AsyncMode::StallPlan);
    if (Extra && !::testing::Test::HasFatalFailure())
      Extra();
  };
  E.AccessBound = [Bounds] { accessBoundCell<A>(Bounds); };
  return E;
}

template <typename A>
BatteryEntry dequeEntry(std::string Name, std::vector<std::string> Headers,
                        bool Exhaustive, AccessBounds Bounds,
                        std::function<void()> ExtraCrash = nullptr) {
  BatteryEntry E;
  E.Name = std::move(Name);
  E.CoveredHeaders = std::move(Headers);
  E.SpecReplay = [] { dequeSpecReplayCell<A>(); };
  E.LincheckStress = [] { dequeStressRounds<A>(AsyncMode::None); };
  E.Explore = [Exhaustive] { dequeExploreCell<A>(Exhaustive); };
  E.Chaos = [] { dequeStressRounds<A>(AsyncMode::Chaos); };
  E.CrashOrStall = [Extra = std::move(ExtraCrash)] {
    dequeStressRounds<A>(AsyncMode::StallPlan);
    if (Extra && !::testing::Test::HasFatalFailure())
      Extra();
  };
  E.AccessBound = [Bounds] { dequeAccessBoundCell<A>(Bounds); };
  return E;
}

template <typename A>
BatteryEntry mapEntry(std::string Name, std::vector<std::string> Headers,
                      MapAccessBounds Bounds,
                      std::function<void()> ExtraCrash = nullptr) {
  BatteryEntry E;
  E.Name = std::move(Name);
  E.CoveredHeaders = std::move(Headers);
  E.SpecReplay = [] { mapSpecReplayCell<A>(); };
  E.LincheckStress = [] { mapStressRounds<A>(AsyncMode::None); };
  E.Explore = [] { mapExploreCell<A>(); };
  E.Chaos = [] { mapStressRounds<A>(AsyncMode::Chaos); };
  E.CrashOrStall = [Extra = std::move(ExtraCrash)] {
    mapStressRounds<A>(AsyncMode::StallPlan);
    if (Extra && !::testing::Test::HasFatalFailure())
      Extra();
  };
  E.AccessBound = [Bounds] { mapAccessBoundCell<A>(Bounds); };
  return E;
}

inline BatteryEntry counterEntry() {
  BatteryEntry E;
  E.Name = "cs-counter";
  E.CoveredHeaders = {"ContentionSensitiveCounter.h"};
  E.SpecReplay = [] { counterSpecReplayCell(); };
  E.LincheckStress = [] { counterStressRounds(AsyncMode::None); };
  E.Explore = [] { counterExploreCell(); };
  E.Chaos = [] { counterStressRounds(AsyncMode::Chaos); };
  E.CrashOrStall = [] { counterStressRounds(AsyncMode::StallPlan); };
  E.AccessBound = [] { counterAccessBoundCell(); };
  return E;
}

/// The battery matrix. Crash modes per entry:
///  * lock-free objects (abortable/nonblocking/HLM/wait-free): full
///    victim-crash sweep in addition to the stall plan;
///  * crash-tolerant objects: the forced-slow crash sweep (degradation
///    counter nonzero iff the corpse held the lease);
///  * leasable-locked baselines: the non-RAII lock-level crash sweep;
///  * everything lock-based or announcement-based (plain Figure 3,
///    boxed, boosted, plain locked): stall plan only — a crash inside a
///    ScopedLock region would be released by the unwind (meaningless) or
///    terminate in the noexcept unlock, and a crashed TimestampBoost
///    announcement blocks all later operations by design.
inline const std::vector<BatteryEntry> &batteryRegistry() {
  static const std::vector<BatteryEntry> Registry = [] {
    std::vector<BatteryEntry> R;
    // Stacks.
    R.push_back(pushPopEntry<AbortableStackAdapter>(
        "abortable-stack", {"AbortableStack.h", "Results.h"},
        /*Exhaustive=*/true, AccessBounds{5, 5, true},
        [] { crashSweepCell<AbortableStackAdapter>(); }));
    R.push_back(pushPopEntry<NonBlockingStackAdapter>(
        "nonblocking-stack", {"NonBlockingStack.h"}, /*Exhaustive=*/false,
        AccessBounds{8, 8, false},
        [] { crashSweepCell<NonBlockingStackAdapter>(); }));
    R.push_back(pushPopEntry<CsStackAdapter>(
        "cs-stack", {"ContentionSensitiveStack.h", "ContentionSensitive.h"},
        /*Exhaustive=*/false, AccessBounds{6, 6, true}));
    R.push_back(pushPopEntry<CtStackAdapter>(
        "ct-stack", {"CrashTolerantStack.h", "CrashTolerant.h"},
        /*Exhaustive=*/false, AccessBounds{6, 6, true},
        [] { crashTolerantSweepCell<CtStackAdapter>(); }));
    R.push_back(pushPopEntry<UnboundedStackAdapter>(
        "unbounded-stack", {"UnboundedStack.h"}, /*Exhaustive=*/false,
        AccessBounds{5, 5, true},
        [] { crashSweepCell<UnboundedStackAdapter>(); }));
    R.push_back(pushPopEntry<UnboundedCsStackAdapter>(
        "unbounded-cs-stack", {}, /*Exhaustive=*/false,
        AccessBounds{6, 6, true}));
    R.push_back(pushPopEntry<BoxedStackAdapter>(
        "boxed-stack", {"BoxedStack.h"}, /*Exhaustive=*/false,
        AccessBounds{32, 32, false}));
    R.push_back(pushPopEntry<BoostedStackAdapter>(
        "boosted-stack", {"TimestampBoost.h"}, /*Exhaustive=*/false,
        AccessBounds{6, 6, true}));
    R.push_back(pushPopEntry<WaitFreeStackAdapter>(
        "wait-free-stack", {"WaitFreeUniversal.h"}, /*Exhaustive=*/false,
        AccessBounds{256, 256, false},
        [] { crashSweepCell<WaitFreeStackAdapter>(); }));
    R.push_back(pushPopEntry<LockedStackAdapter<TtasLock>>(
        "locked-stack", {}, /*Exhaustive=*/false, AccessBounds{16, 16, false}));
    R.push_back(pushPopEntry<LockedStackAdapter<StarvationFreeLock<Leasable>>>(
        "locked-stack-leased", {}, /*Exhaustive=*/false,
        AccessBounds{64, 64, false}, [] { leasableLockCrashSweep(); }));
    // Queues.
    R.push_back(pushPopEntry<AbortableQueueAdapter>(
        "abortable-queue", {"AbortableQueue.h"}, /*Exhaustive=*/true,
        AccessBounds{6, 6, true},
        [] { crashSweepCell<AbortableQueueAdapter>(); }));
    R.push_back(pushPopEntry<NonBlockingQueueAdapter>(
        "nonblocking-queue", {"NonBlockingQueue.h"}, /*Exhaustive=*/false,
        AccessBounds{10, 10, false},
        [] { crashSweepCell<NonBlockingQueueAdapter>(); }));
    R.push_back(pushPopEntry<CsQueueAdapter>(
        "cs-queue", {"ContentionSensitiveQueue.h"}, /*Exhaustive=*/false,
        AccessBounds{7, 7, true}));
    R.push_back(pushPopEntry<CtQueueAdapter>(
        "ct-queue", {"CrashTolerantQueue.h"}, /*Exhaustive=*/false,
        AccessBounds{7, 7, true},
        [] { crashTolerantSweepCell<CtQueueAdapter>(); }));
    R.push_back(pushPopEntry<UnboundedQueueAdapter>(
        "unbounded-queue", {"UnboundedQueue.h"}, /*Exhaustive=*/false,
        AccessBounds{6, 6, true},
        [] { crashSweepCell<UnboundedQueueAdapter>(); }));
    R.push_back(pushPopEntry<UnboundedCsQueueAdapter>(
        "unbounded-cs-queue", {}, /*Exhaustive=*/false,
        AccessBounds{7, 7, true}));
    R.push_back(pushPopEntry<LockedQueueAdapter<TtasLock>>(
        "locked-queue", {}, /*Exhaustive=*/false, AccessBounds{16, 16, false}));
    R.push_back(pushPopEntry<LockedQueueAdapter<StarvationFreeLock<Leasable>>>(
        "locked-queue-leased", {}, /*Exhaustive=*/false,
        AccessBounds{64, 64, false}, [] { leasableLockCrashSweep(); }));
    // Deques.
    R.push_back(dequeEntry<OfDequeAdapter>(
        "of-deque", {"ObstructionFreeDeque.h"}, /*Exhaustive=*/true,
        AccessBounds{16, 16, false}, [] { ofDequeCrashSweep(); }));
    R.push_back(dequeEntry<CsDequeAdapter>(
        "cs-deque", {"ContentionSensitiveDeque.h"}, /*Exhaustive=*/false,
        AccessBounds{24, 24, false}));
    R.push_back(dequeEntry<CtDequeAdapter>(
        "ct-deque", {"CrashTolerantDeque.h"}, /*Exhaustive=*/false,
        AccessBounds{24, 24, false},
        [] { crashTolerantSweepCell<CtDequeAdapter>(); }));
    // Counter.
    R.push_back(counterEntry());
    // Acceleration layer (perf/). All stall-plan-only: the eliminating
    // and sharded stacks fall back to Figure 3 lock paths, and a killed
    // combiner strands its publication list (DESIGN.md, "Acceleration
    // layer").
    {
      BatteryEntry E = pushPopEntry<EliminatingCsStackAdapter>(
          "eliminating-stack", {}, /*Exhaustive=*/false,
          AccessBounds{6, 6, true});
      const auto Base = std::move(E.Explore);
      E.Explore = [Base] {
        Base();
        eliminationPairSpecPoint();
      };
      R.push_back(std::move(E));
    }
    R.push_back(pushPopEntry<CombiningStackAdapter>(
        "combining-stack", {}, /*Exhaustive=*/false, AccessBounds{6, 6, true}));
    R.push_back(pushPopEntry<CombiningQueueAdapter>(
        "combining-queue", {}, /*Exhaustive=*/false, AccessBounds{7, 7, true}));
    R.push_back(dequeEntry<CombiningDequeAdapter>(
        "combining-deque", {}, /*Exhaustive=*/false,
        AccessBounds{24, 24, false}));
    R.push_back(pushPopEntry<ShardedStackAdapter>(
        "sharded-stack", {}, /*Exhaustive=*/false, AccessBounds{6, 6, true}));
    // Adaptive facade, twice: the default controller (mask moves come
    // only from grow-on-full) and the churn controller (the obs loop
    // grows and shrinks mid-round). Stall-plan-only like every sharded
    // entry; the access-bound cell runs at the one-shard mask, where a
    // solo op is a plain Figure 3 shortcut — exactly six accesses.
    R.push_back(pushPopEntry<AdaptiveStackAdapter>(
        "adaptive-stack", {}, /*Exhaustive=*/false, AccessBounds{6, 6, true}));
    R.push_back(pushPopEntry<AdaptiveChurnStackAdapter>(
        "adaptive-stack-churn", {}, /*Exhaustive=*/false,
        AccessBounds{6, 6, true}));
    // Ordered maps. The cs-map's slow path is a per-region RAII lock, so
    // stress-crash coverage is stall-plan-only like every Fig-3 entry;
    // the extra sweep crashes only shortcut shapes, which never hold a
    // lock (mapCrashSweep's banner states the boundary).
    R.push_back(mapEntry<CsMapAdapter>(
        "cs-map", {"ContentionSensitiveMap.h", "SkipListCore.h"},
        MapAccessBounds{9, 11, 11, 11, /*Exact=*/true},
        [] { mapCrashSweep(); }));
    R.push_back(mapEntry<LockedMapAdapter>(
        "locked-map", {}, MapAccessBounds{16, 16, 16, 16, /*Exact=*/false}));
    return R;
  }();
  return Registry;
}

} // namespace conformance
} // namespace csobj

#endif // CSOBJ_TESTS_CONFORMANCE_BATTERY_H
