//===- tests/conformance/conformance_test.cpp - Battery driver -----------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the conformance battery (Battery.h): every registered object
/// runs the same six cells, parameterized over the registry. Two
/// registry-level tests make the battery self-enforcing: the matrix may
/// not have empty cells, and every header under src/core must be claimed
/// by some entry — adding a new core object without registering it here
/// fails the CI conformance job.
///
/// Also hosts the StarvationFreeLock<Leasable> fault-plan coverage that
/// the battery's lock-level crash sweep builds on: an explorer-driven
/// FaultPlan crash (faultPlanPick) and a wall-clock stall plan that must
/// never falsely revoke a live default-patience holder.
///
//===----------------------------------------------------------------------===//

#include "conformance/Battery.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace csobj {
namespace conformance {
namespace {

//===----------------------------------------------------------------------===
// The matrix: object x cell
//===----------------------------------------------------------------------===

class BatteryTest : public ::testing::TestWithParam<const BatteryEntry *> {};

TEST_P(BatteryTest, SpecReplay) {
  ASSERT_TRUE(GetParam()->SpecReplay);
  GetParam()->SpecReplay();
}

TEST_P(BatteryTest, LincheckStress) {
  ASSERT_TRUE(GetParam()->LincheckStress);
  GetParam()->LincheckStress();
}

TEST_P(BatteryTest, Explore) {
  ASSERT_TRUE(GetParam()->Explore);
  GetParam()->Explore();
}

TEST_P(BatteryTest, Chaos) {
  ASSERT_TRUE(GetParam()->Chaos);
  GetParam()->Chaos();
}

TEST_P(BatteryTest, CrashOrStall) {
  ASSERT_TRUE(GetParam()->CrashOrStall);
  GetParam()->CrashOrStall();
}

TEST_P(BatteryTest, AccessBound) {
  ASSERT_TRUE(GetParam()->AccessBound);
  GetParam()->AccessBound();
}

std::vector<const BatteryEntry *> batteryPointers() {
  std::vector<const BatteryEntry *> Out;
  for (const BatteryEntry &E : batteryRegistry())
    Out.push_back(&E);
  return Out;
}

std::string batteryName(
    const ::testing::TestParamInfo<const BatteryEntry *> &Info) {
  std::string Name = Info.param->Name;
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(Conformance, BatteryTest,
                         ::testing::ValuesIn(batteryPointers()), batteryName);

//===----------------------------------------------------------------------===
// Registry self-enforcement
//===----------------------------------------------------------------------===

TEST(ConformanceRegistryTest, MatrixHasNoEmptyCells) {
  std::set<std::string> Names;
  for (const BatteryEntry &E : batteryRegistry()) {
    EXPECT_FALSE(E.Name.empty());
    EXPECT_TRUE(Names.insert(E.Name).second)
        << "duplicate battery entry: " << E.Name;
    EXPECT_TRUE(E.SpecReplay) << E.Name;
    EXPECT_TRUE(E.LincheckStress) << E.Name;
    EXPECT_TRUE(E.Explore) << E.Name;
    EXPECT_TRUE(E.Chaos) << E.Name;
    EXPECT_TRUE(E.CrashOrStall) << E.Name;
    EXPECT_TRUE(E.AccessBound) << E.Name;
  }
  EXPECT_GE(Names.size(), 32u);
}

TEST(ConformanceRegistryTest, EveryCoreHeaderHasABatteryEntry) {
  namespace fs = std::filesystem;
  std::set<std::string> Covered;
  for (const BatteryEntry &E : batteryRegistry())
    Covered.insert(E.CoveredHeaders.begin(), E.CoveredHeaders.end());

  const fs::path CoreDir = fs::path(CSOBJ_SOURCE_DIR) / "src" / "core";
  ASSERT_TRUE(fs::exists(CoreDir)) << CoreDir;
  std::vector<std::string> Missing;
  std::uint32_t HeadersSeen = 0;
  for (const auto &Entry : fs::directory_iterator(CoreDir)) {
    if (Entry.path().extension() != ".h")
      continue;
    ++HeadersSeen;
    const std::string Name = Entry.path().filename().string();
    if (!Covered.count(Name))
      Missing.push_back(Name);
  }
  EXPECT_GT(HeadersSeen, 0u);
  std::string Joined;
  for (const std::string &M : Missing)
    Joined += M + " ";
  EXPECT_TRUE(Missing.empty())
      << "src/core headers with no battery entry (register an adapter in "
         "tests/conformance/Battery.h): "
      << Joined;

  // Reverse direction: a covered-header claim must name a file that still
  // exists, so renames cannot leave the registry silently stale.
  for (const std::string &Name : Covered)
    EXPECT_TRUE(fs::exists(CoreDir / Name))
        << "battery entry claims nonexistent core header " << Name;
}

//===----------------------------------------------------------------------===
// StarvationFreeLock<Leasable> under FaultPlan
//===----------------------------------------------------------------------===

TEST(LeasableLockFaultPlanTest, ExplorerCrashPlanIsSurvivedAndHealed) {
  // A FaultPlan crash delivered through faultPlanPick: the victim dies at
  // its 5th shared access — mid-acquisition, with its doorway flag
  // already raised — and the survivor's unbounded lock() must still
  // terminate and leave the lock healed.
  StarvationFreeLock<LeasableTag<16>> Lock(3);
  AtomicRegister<std::uint32_t> Reg;
  InterleaveScheduler Scheduler(2);
  Scheduler.run({[&] {
                   Lock.lock(0);
                   Reg.write(1);
                   Lock.unlock(0);
                 },
                 [&] {
                   Lock.lock(1);
                   Reg.write(2);
                   Lock.unlock(1);
                 }},
                faultPlanPick(FaultPlan::crashAt(0, 4)));
  EXPECT_EQ(Reg.peekForTesting(), 2u);
  EXPECT_EQ(Lock.inner().holderForTesting(), 0u);
  EXPECT_TRUE(Lock.suspects().isSuspectForTesting(0));

  // Healed: a third process acquires on the main thread.
  Lock.lock(2);
  Lock.unlock(2);
  EXPECT_EQ(Lock.inner().holderForTesting(), 0u);
}

TEST(LeasableLockFaultPlanTest, StallPlanNeverRevokesALiveDefaultHolder) {
  // Wall-clock stall plan: the victim is held at an access for
  // StallPlanGrants foreign accesses — far below the default patience —
  // so mutual exclusion over plain memory must survive with no
  // revocations and no lost leases.
  constexpr std::uint32_t Iterations = 50;
  StarvationFreeLock<Leasable> Lock(2);
  std::uint64_t Counter = 0;
  FaultClock Clock;
  const FaultPlan Plan =
      FaultPlan::stallAt(0, StallPlanAtAccess, StallPlanGrants);
  SpinBarrier Barrier(2);
  std::vector<std::thread> Threads;
  for (std::uint32_t T = 0; T < 2; ++T) {
    Threads.emplace_back([&, T] {
      FaultInjector Hook(Plan, T, Clock);
      SchedHookScope Scope(Hook);
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < Iterations; ++I) {
        Lock.lock(T);
        ++Counter;
        Lock.unlock(T);
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Counter, 2u * Iterations);
  EXPECT_EQ(Lock.inner().revocations(), 0u);
  EXPECT_EQ(Lock.inner().lostLeases(), 0u);
  EXPECT_EQ(Lock.inner().holderForTesting(), 0u);
}

} // namespace
} // namespace conformance
} // namespace csobj
