//===- tests/conformance/Params.h - Shared battery parameters ---*- C++ -*-===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place the conformance battery's scope parameters live, shared
/// with the benchmark drivers so the battery exercises the same object
/// configurations the experiment tables report on. bench_abort_rate.cpp
/// and bench_starvation.cpp include this header instead of repeating the
/// capacity as a magic number.
///
//===----------------------------------------------------------------------===//

#ifndef CSOBJ_TESTS_CONFORMANCE_PARAMS_H
#define CSOBJ_TESTS_CONFORMANCE_PARAMS_H

#include <cstdint>

namespace csobj {
namespace conformance {

/// Capacity used by the wall-clock experiment cells (BenchCommon's
/// runCell default and the saboteur cells of bench_starvation) and by
/// the battery's bench-configuration smoke checks. Large enough that no
/// bench workload ever hits Full, so abort/degradation rates measure
/// contention, not capacity pressure.
inline constexpr std::uint32_t BenchCapacity = 4096;

/// Small-scope capacity for battery cells: small enough that Full and
/// Empty edges are reached constantly (where linearizability bugs hide),
/// and that the checker's search space stays tiny.
inline constexpr std::uint32_t SmallCapacity = 4;

/// Left-side free slots of the linear HLM deque at SmallCapacity (the
/// positional LinearDequeSpec needs the same split as the object).
inline constexpr std::uint32_t SmallLeftSlots = 2;

/// Lincheck stress-cell shape: Threads x OpsPerThread operations per
/// round, every round checked for linearizability. 3 x 6 keeps the
/// Wing & Gong search instant while still crossing Full/Empty edges.
inline constexpr std::uint32_t StressThreads = 3;
inline constexpr std::uint32_t StressOpsPerThread = 6;
inline constexpr std::uint32_t StressRounds = 12;

/// Chaos-cell rounds (same shape as stress, run under ChaosHook).
inline constexpr std::uint32_t ChaosRounds = 6;
inline constexpr std::uint32_t ChaosYieldPermille = 80;
inline constexpr std::uint32_t ChaosStallPermille = 30;
inline constexpr std::uint64_t ChaosStallGrants = 64;

/// Random-walk schedule samples for objects whose schedule space is
/// unbounded (anything with a waiting loop).
inline constexpr std::uint64_t RandomWalkRuns = 48;

/// Patience, in logical observations, used wherever the battery forces
/// degradation deterministically (crash sweeps, explorer runs). Small so
/// a corpse is detected within a handful of scheduler grants.
inline constexpr std::uint32_t SmallPatience = 8;

/// Ordered-map battery shape. Concurrent map cells run over a small key
/// universe (so same-key and same-region conflicts are constant) against
/// a capacity the universe can never fill: the map's distinct-keys-ever
/// admission is exact solo but may over-admit when concurrent inserts
/// race precisely at the capacity boundary (DESIGN.md "Ordered map"), so
/// the Full edge is exercised by the *sequential* spec-replay cell and
/// kept unreachable in concurrent rounds. MapRegions=2 keeps both the
/// same-region doorway and the cross-region independence paths hot.
inline constexpr std::uint32_t MapCapacity = 64;
inline constexpr std::uint32_t MapStressKeys = 8;
inline constexpr std::uint32_t MapRegions = 2;

/// Stall-plan cell: the victim's trigger access and the foreign-access
/// grants it is held for. Grants comfortably exceed SmallPatience so a
/// stalled lease can expire, and stay far below any wall-clock default
/// patience so live locks are never falsely revoked.
inline constexpr std::uint64_t StallPlanAtAccess = 3;
inline constexpr std::uint64_t StallPlanGrants = 48;

} // namespace conformance
} // namespace csobj

#endif // CSOBJ_TESTS_CONFORMANCE_PARAMS_H
