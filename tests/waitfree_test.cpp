//===- tests/waitfree_test.cpp - Wait-free universal object --------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//

#include "core/WaitFreeUniversal.h"

#include "lincheck/Checker.h"
#include "lincheck/Spec.h"
#include "runtime/SpinBarrier.h"
#include "sched/Explorer.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// Wait-free counter
//===----------------------------------------------------------------------===

TEST(WaitFreeCounterTest, SequentialAdds) {
  WaitFreeCounter<> Counter(1);
  EXPECT_EQ(Counter.add(0, 5), 5u);
  EXPECT_EQ(Counter.add(0, 3), 8u);
  EXPECT_EQ(Counter.valueForTesting(), 8u);
}

TEST(WaitFreeCounterTest, TwoThreadsAlternating) {
  WaitFreeCounter<> Counter(2);
  EXPECT_EQ(Counter.add(0, 1), 1u);
  EXPECT_EQ(Counter.add(1, 1), 2u);
  EXPECT_EQ(Counter.add(0, 1), 3u);
  EXPECT_EQ(Counter.add(1, 1), 4u);
}

TEST(WaitFreeCounterTest, ExactUnderContention) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t PerThread = 5000;
  WaitFreeCounter<> Counter(Threads);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  std::vector<std::uint64_t> LastSeen(Threads, 0);
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I) {
        const std::uint64_t R = Counter.add(T, 1);
        // Results must be strictly increasing per thread (each add's
        // return is the counter value at its linearization point).
        ASSERT_GT(R, LastSeen[T]);
        LastSeen[T] = R;
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Counter.valueForTesting(),
            static_cast<std::uint64_t>(Threads) * PerThread);
}

TEST(WaitFreeCounterExhaustive, TwoRacingAddsAllInterleavings) {
  ScheduleExplorer Explorer;
  std::uint64_t Violations = 0;
  const ExploreResult Result = Explorer.exploreAll([&] {
    auto Counter = std::make_shared<WaitFreeCounter<2>>(2);
    auto Results = std::make_shared<std::vector<std::uint64_t>>(2, 0);
    ScenarioRun Run;
    for (std::uint32_t T = 0; T < 2; ++T)
      Run.Bodies.push_back([Counter, Results, T] {
        (*Results)[T] = Counter->add(T, T + 1); // +1 and +2.
      });
    Run.PostCheck = [Counter, Results, &Violations] {
      // Total is exact; each result is a legal intermediate value.
      if (Counter->valueForTesting() != 3)
        ++Violations;
      const std::uint64_t R0 = (*Results)[0], R1 = (*Results)[1];
      const bool Order01 = (R0 == 1 && R1 == 3); // add0 then add1.
      const bool Order10 = (R0 == 3 && R1 == 2); // add1 then add0.
      if (!Order01 && !Order10)
        ++Violations;
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Violations, 0u);
  EXPECT_GT(Result.Runs, 5u);
}

//===----------------------------------------------------------------------===
// Wait-free stack
//===----------------------------------------------------------------------===

TEST(WaitFreeStackTest, SequentialLifoAndBounds) {
  WaitFreeStack<2> Stack(1);
  EXPECT_TRUE(Stack.pop(0).isEmpty());
  EXPECT_EQ(Stack.push(0, 10), PushResult::Done);
  EXPECT_EQ(Stack.push(0, 20), PushResult::Done);
  EXPECT_EQ(Stack.push(0, 30), PushResult::Full);
  auto R = Stack.pop(0);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 20u);
  R = Stack.pop(0);
  ASSERT_TRUE(R.isValue());
  EXPECT_EQ(R.value(), 10u);
  EXPECT_TRUE(Stack.pop(0).isEmpty());
}

TEST(WaitFreeStackTest, ConcurrentConservation) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t PerThread = 1000;
  WaitFreeStack<64> Stack(Threads);
  SpinBarrier Barrier(Threads);
  std::vector<std::int64_t> Net(Threads, 0);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T + 9);
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < PerThread; ++I) {
        if (Rng.chance(1, 2)) {
          if (Stack.push(T, static_cast<std::uint32_t>(Rng.below(1u << 20))) ==
              PushResult::Done)
            ++Net[T];
        } else if (Stack.pop(T).isValue()) {
          --Net[T];
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  std::int64_t Total = 0;
  for (std::int64_t X : Net)
    Total += X;
  ASSERT_GE(Total, 0);
  EXPECT_EQ(Stack.sizeForTesting(), static_cast<std::uint32_t>(Total));
}

TEST(WaitFreeStackLincheck, ConcurrentHistoriesLinearize) {
  for (std::uint32_t Round = 0; Round < 40; ++Round) {
    auto Stack = std::make_unique<WaitFreeStack<4>>(3);
    std::vector<HistoryRecorder> Recorders;
    for (std::uint32_t T = 0; T < 3; ++T)
      Recorders.emplace_back(T);
    SpinBarrier Barrier(3);
    std::vector<std::thread> Workers;
    for (std::uint32_t T = 0; T < 3; ++T)
      Workers.emplace_back([&, T] {
        SplitMix64 Rng(Round * 131 + T);
        Barrier.arriveAndWait();
        for (int I = 0; I < 6; ++I) {
          const auto V =
              static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1;
          const auto T0 = HistoryRecorder::now();
          if (Rng.chance(1, 2)) {
            const PushResult R = Stack->push(T, V);
            Recorders[T].recordPush(V, R == PushResult::Full, T0,
                                    HistoryRecorder::now());
          } else {
            const auto R = Stack->pop(T);
            if (R.isValue())
              Recorders[T].recordPopValue(R.value(), T0,
                                          HistoryRecorder::now());
            else
              Recorders[T].recordPopEmpty(T0, HistoryRecorder::now());
          }
        }
      });
    for (auto &W : Workers)
      W.join();
    const History H = mergeHistories(Recorders);
    const CheckResult Result = checkLinearizable(H, BoundedStackSpec(4));
    ASSERT_FALSE(Result.HitSearchCap);
    ASSERT_TRUE(Result.Linearizable) << Result.FailureNote;
  }
}

TEST(WaitFreeStackExhaustive, PushRacingPopConsistent) {
  ScheduleExplorer Explorer(ExploreOptions{/*MaxRuns=*/100000,
                                           /*StepCap=*/100000});
  std::uint64_t Violations = 0;
  const ExploreResult Result = Explorer.exploreAll([&] {
    auto Stack = std::make_shared<WaitFreeStack<4, 2>>(2);
    EXPECT_EQ(Stack->push(0, 9), PushResult::Done);
    auto PopRes = std::make_shared<PopResult<std::uint32_t>>(
        PopResult<std::uint32_t>::abort());
    auto PushRes = std::make_shared<PushResult>(PushResult::Abort);
    ScenarioRun Run;
    Run.Bodies.push_back(
        [Stack, PushRes] { *PushRes = Stack->push(0, 5); });
    Run.Bodies.push_back([Stack, PopRes] { *PopRes = Stack->pop(1); });
    Run.PostCheck = [Stack, PushRes, PopRes, &Violations] {
      // Wait-free: both complete, never "abort". Pop sees 9 or 5.
      if (*PushRes != PushResult::Done)
        ++Violations;
      if (!PopRes->isValue())
        ++Violations;
      else if (PopRes->value() != 9 && PopRes->value() != 5)
        ++Violations;
      if (Stack->sizeForTesting() != 1)
        ++Violations;
    };
    return Run;
  });
  EXPECT_TRUE(Result.Complete) << Result.Runs;
  EXPECT_EQ(Violations, 0u);
}

} // namespace
} // namespace csobj
