//===- tests/perf_test.cpp - Acceleration layer unit tests ---------------===//
//
// Part of csobj, a reproduction of Mostefaoui & Raynal (PI-1969, 2011).
//
//===----------------------------------------------------------------------===//
//
// Unit tests for src/perf/ beyond what the conformance battery covers:
// the elimination slot machine driven through directed schedules, the
// flat-combining publication protocol, the sharded stack's boundary
// answers, the solo access-count regressions for every accelerated
// object (the 6-access claim must survive acceleration), and the
// static false-sharing audit of every new hot word.
//
//===----------------------------------------------------------------------===//

#include "baselines/LockedMap.h"
#include "core/SkipListCore.h"
#include "faults/FaultInjector.h"
#include "faults/FaultPlan.h"
#include "memory/AccessCounter.h"
#include "memory/ChaosHook.h"
#include "perf/AdaptiveShardedStack.h"
#include "perf/CombiningObjects.h"
#include "perf/EliminatingStack.h"
#include "perf/EliminationArray.h"
#include "perf/ShardController.h"
#include "perf/ShardedStack.h"
#include "runtime/SpinBarrier.h"
#include "sched/InterleaveScheduler.h"
#include "support/CacheLine.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

namespace csobj {
namespace {

//===----------------------------------------------------------------------===
// False-sharing audit (satellite of the CacheLinePadded sweep): every hot
// word the acceleration layer adds must own its cache line(s).
//===----------------------------------------------------------------------===

static_assert(occupiesWholeCacheLines<EliminationArray::PaddedSlot>,
              "elimination slots must not share cache lines");
static_assert(
    occupiesWholeCacheLines<CombiningContentionSensitive<>::Record>,
    "combiner publication records must not share cache lines");
// The skeleton-shared words (CONTENTION, CombinerBusy, the arbiter's TURN
// and FLAG[] elements) all use CacheLinePadded; pin the predicate on the
// element type they share.
static_assert(occupiesWholeCacheLines<CacheLinePadded<
                  AtomicRegister<std::uint8_t, DefaultRegisterPolicy>>>,
              "padded register elements must round up to full lines");

TEST(FalseSharing, AdjacentEliminationSlotsAreLineDisjoint) {
  EliminationArray A(/*SlotCount=*/4, /*SpinBudget=*/4);
  // The static_asserts above make adjacent array elements line-disjoint;
  // double-check the runtime layout of the slot type.
  EXPECT_EQ(sizeof(EliminationArray::PaddedSlot) % CacheLineSize, 0u);
  EXPECT_GE(alignof(EliminationArray::PaddedSlot), CacheLineSize);
}

//===----------------------------------------------------------------------===
// EliminationArray: the slot machine under directed schedules
//===----------------------------------------------------------------------===

TEST(EliminationArray, SoloGiveWithdraws) {
  EliminationArray A(1, /*SpinBudget=*/4);
  const bool Matched = A.tryGive(7, 0, [] { return true; });
  EXPECT_FALSE(Matched) << "no partner: the giver must withdraw";
  EXPECT_EQ(A.exchangesForTesting(), 0u);
  // The slot is usable again after the withdrawal.
  EXPECT_FALSE(A.tryTake(0, [] { return true; }).has_value());
}

TEST(EliminationArray, SoloTakeWithdraws) {
  EliminationArray A(1, /*SpinBudget=*/4);
  EXPECT_FALSE(A.tryTake(0, [] { return true; }).has_value());
  EXPECT_EQ(A.exchangesForTesting(), 0u);
}

/// Directed rendezvous: the taker parks (slot read + park C&S), then the
/// giver runs to completion (slot read, gate, match C&S), then the taker
/// drains the Done slot.
TEST(EliminationArray, DirectedPairExchanges) {
  EliminationArray A(1, /*SpinBudget=*/8);
  bool Gave = false;
  std::optional<std::uint32_t> Took;
  std::uint32_t TakerGrants = 0;
  InterleaveScheduler Scheduler(2);
  Scheduler.run(
      {[&] { Gave = A.tryGive(42, 0, [] { return true; }); },
       [&] { Took = A.tryTake(0, [] { return true; }); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        const bool HasGiver =
            std::find(Parked.begin(), Parked.end(), 0u) != Parked.end();
        const bool HasTaker =
            std::find(Parked.begin(), Parked.end(), 1u) != Parked.end();
        if (TakerGrants < 2 && HasTaker) {
          ++TakerGrants;
          return 1;
        }
        if (HasGiver)
          return 0;
        return Parked.front();
      });
  EXPECT_TRUE(Gave);
  ASSERT_TRUE(Took.has_value());
  EXPECT_EQ(*Took, 42u);
  EXPECT_EQ(A.exchangesForTesting(), 2u); // one per matched operation
}

/// Same schedule, but the matcher's gate declines: no match may happen,
/// both sides fail, and the slot returns to Empty.
TEST(EliminationArray, GateDeclineBlocksMatch) {
  EliminationArray A(1, /*SpinBudget=*/8);
  bool Gave = true;
  std::optional<std::uint32_t> Took;
  std::uint32_t TakerGrants = 0;
  InterleaveScheduler Scheduler(2);
  Scheduler.run(
      {[&] { Gave = A.tryGive(42, 0, [] { return false; }); },
       [&] { Took = A.tryTake(0, [] { return true; }); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        const bool HasGiver =
            std::find(Parked.begin(), Parked.end(), 0u) != Parked.end();
        const bool HasTaker =
            std::find(Parked.begin(), Parked.end(), 1u) != Parked.end();
        if (TakerGrants < 2 && HasTaker) {
          ++TakerGrants;
          return 1;
        }
        if (HasGiver)
          return 0;
        return Parked.front();
      });
  EXPECT_FALSE(Gave) << "gate declined: the give must not match";
  EXPECT_FALSE(Took.has_value());
  EXPECT_EQ(A.exchangesForTesting(), 0u);
  // Slot healthy afterwards.
  EXPECT_FALSE(A.tryGive(1, 0, [] { return true; }));
}

//===----------------------------------------------------------------------===
// Flat combining: publication protocol and batch accounting
//===----------------------------------------------------------------------===

/// Directed abort-into-combine: T0 is interrupted mid weak push so its
/// TOP C&S fails, diverting it into the publication list; with nobody
/// else publishing, T0 wins CombinerBusy and serves itself.
TEST(Combining, AbortedFastPathBecomesCombiner) {
  CombiningStack<> S(2, 4);
  std::optional<PushResult> Res0;
  std::optional<PushResult> Res1;
  std::uint32_t Grants0 = 0;
  InterleaveScheduler Scheduler(2);
  Scheduler.run(
      {[&] { Res0 = S.push(0, 1); }, [&] { Res1 = S.push(1, 2); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        const bool Has0 =
            std::find(Parked.begin(), Parked.end(), 0u) != Parked.end();
        const bool Has1 =
            std::find(Parked.begin(), Parked.end(), 1u) != Parked.end();
        // T0: CONTENTION read + the first 4 weak-push accesses, stopping
        // just before its TOP C&S...
        if (Grants0 < 5 && Has0) {
          ++Grants0;
          return 0;
        }
        // ...then T1 pushes to completion, invalidating T0's snapshot...
        if (Has1)
          return 1;
        // ...then T0: failed C&S -> publish -> combine -> done.
        return Parked.front();
      });
  ASSERT_TRUE(Res0.has_value());
  ASSERT_TRUE(Res1.has_value());
  EXPECT_EQ(*Res0, PushResult::Done);
  EXPECT_EQ(*Res1, PushResult::Done);
  EXPECT_EQ(S.sizeForTesting(), 2u);
  EXPECT_EQ(S.skeleton().batchesForTesting(), 1u);
  EXPECT_EQ(S.skeleton().combinedOpsForTesting(), 1u);
  EXPECT_FALSE(S.skeleton().contentionForTesting())
      << "combiner must lower CONTENTION before retiring";
}

/// Counter exact-sum under real threads: unit adds return each value in
/// {1..total} exactly once regardless of how often combining kicks in.
TEST(Combining, CounterExactSumUnderThreads) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t OpsPerThread = 256;
  CombiningCounter C(Threads);
  std::vector<std::vector<std::uint64_t>> Returns(Threads);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (std::uint32_t I = 0; I < OpsPerThread; ++I)
        Returns[T].push_back(C.add(T, 1));
    });
  for (auto &W : Workers)
    W.join();

  std::vector<std::uint64_t> All;
  for (const auto &Per : Returns)
    All.insert(All.end(), Per.begin(), Per.end());
  std::sort(All.begin(), All.end());
  ASSERT_EQ(All.size(), static_cast<std::size_t>(Threads) * OpsPerThread);
  for (std::size_t I = 0; I < All.size(); ++I)
    ASSERT_EQ(All[I], I + 1);
  EXPECT_EQ(C.valueForTesting(), All.size());
}

//===----------------------------------------------------------------------===
// Sharded stack: bag semantics at the boundaries
//===----------------------------------------------------------------------===

TEST(ShardedStack, SoloFillDrainCrossesBothEdges) {
  ShardedStack<2> S(2, 4, /*SlotCount=*/1, /*SpinBudget=*/4);
  EXPECT_EQ(S.capacity(), 4u);
  EXPECT_EQ(S.shardCapacity(), 2u);
  for (std::uint32_t V = 1; V <= 4; ++V)
    EXPECT_EQ(S.push(0, V), PushResult::Done) << "value " << V;
  EXPECT_EQ(S.sizeForTesting(), 4u);
  // All shards full: the all-full double collect certifies Full.
  EXPECT_EQ(S.push(0, 5), PushResult::Full);
  EXPECT_EQ(S.push(1, 6), PushResult::Full);

  std::vector<std::uint32_t> Popped;
  for (std::uint32_t I = 0; I < 4; ++I) {
    const PopResult<std::uint32_t> R = S.pop(0);
    ASSERT_TRUE(R.isValue());
    Popped.push_back(R.value());
  }
  std::sort(Popped.begin(), Popped.end());
  EXPECT_EQ(Popped, (std::vector<std::uint32_t>{1, 2, 3, 4}))
      << "bag conservation: every pushed value popped exactly once";
  // All shards empty: the all-empty double collect certifies Empty.
  EXPECT_TRUE(S.pop(0).isEmpty());
  EXPECT_TRUE(S.pop(1).isEmpty());
}

TEST(ShardedStack, OverflowSpillsToNeighbourShard) {
  ShardedStack<2> S(2, 4, 1, 4);
  // All pushes from thread 0 (home shard 0): the third and fourth must
  // spill into shard 1.
  for (std::uint32_t V = 1; V <= 4; ++V)
    ASSERT_EQ(S.push(0, V), PushResult::Done);
  EXPECT_EQ(S.shard(0).sizeForTesting(), 2u);
  EXPECT_EQ(S.shard(1).sizeForTesting(), 2u);
}

TEST(ShardedStack, StressConservesElements) {
  constexpr std::uint32_t Threads = 4;
  constexpr std::uint32_t OpsPerThread = 512;
  ShardedStack<2> S(Threads, 8, /*SlotCount=*/2, /*SpinBudget=*/16);
  std::vector<std::int64_t> Balance(Threads, 0);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (std::uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Barrier.arriveAndWait();
      SplitMix64 Rng(0x5AA5ull + T);
      for (std::uint32_t I = 0; I < OpsPerThread; ++I) {
        if (Rng.chance(1, 2)) {
          const std::uint32_t V =
              static_cast<std::uint32_t>(Rng.below(1u << 16)) + 1;
          if (S.push(T, V) == PushResult::Done)
            ++Balance[T];
        } else {
          if (S.pop(T).isValue())
            --Balance[T];
        }
      }
    });
  for (auto &W : Workers)
    W.join();
  std::int64_t Net = 0;
  for (const std::int64_t B : Balance)
    Net += B;
  ASSERT_GE(Net, 0);
  EXPECT_EQ(S.sizeForTesting(), static_cast<std::uint32_t>(Net))
      << "pushes minus pops must equal the residual size";
}

//===----------------------------------------------------------------------===
// Sharded stack: the inter-shard balancer actually exchanges
//===----------------------------------------------------------------------===

/// Directed exchange through the forced balancer: the push parks its
/// value in the elimination slot, then the pop matches it — the pair
/// never touches any shard. This is the facade seam in isolation.
TEST(ShardedBalancer, ForcedDirectedPairExchanges) {
  ShardedStack<2> S(2, 4, /*SlotCount=*/1, /*SpinBudget=*/8);
  S.forceBalancerForTesting(true);
  std::optional<PushResult> Pushed;
  PopResult<std::uint32_t> Popped = PopResult<std::uint32_t>::empty();
  std::uint32_t GiverGrants = 0;
  InterleaveScheduler Scheduler(2);
  Scheduler.run(
      {[&] { Pushed = S.push(0, 42); }, [&] { Popped = S.pop(1); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        const bool HasGiver =
            std::find(Parked.begin(), Parked.end(), 0u) != Parked.end();
        const bool HasTaker =
            std::find(Parked.begin(), Parked.end(), 1u) != Parked.end();
        // Giver: slot read + park C&S, leaving 42 waiting in the slot...
        if (GiverGrants < 2 && HasGiver) {
          ++GiverGrants;
          return 0;
        }
        // ...then the taker matches it (slot read, gate read, pair C&S).
        if (HasTaker)
          return 1;
        return Parked.front();
      });
  ASSERT_TRUE(Pushed.has_value());
  EXPECT_EQ(*Pushed, PushResult::Done);
  ASSERT_TRUE(Popped.isValue());
  EXPECT_EQ(Popped.value(), 42u);
  EXPECT_EQ(S.eliminationExchangesForTesting(), 2u)
      << "one exchange per matched operation";
  EXPECT_EQ(S.sizeForTesting(), 0u) << "the pair bypassed every shard";
  if constexpr (obs::MetricsEnabled) {
    const obs::PathSnapshot Snap = S.pathSnapshot();
    EXPECT_EQ(Snap.Ops, 2u);
    EXPECT_EQ(Snap.path(obs::Path::Eliminated), 2u);
    EXPECT_TRUE(Snap.conserves());
  }
}

/// Directed exchange through the *rescue-window* seam — the production
/// balancer path, no test knob: T2's completed pop invalidates both
/// T0's pop snapshot and T1's push snapshot; T1's failed shortcut parks
/// its value in the slot via the rescue window, and T0's failed
/// shortcut takes it via its own rescue window. Mid-bag load (neither
/// full nor empty), so the old boundary-only seam would never fire —
/// this is the regression test for the E12 "0 exchanges" finding.
TEST(ShardedBalancer, RescueWindowDirectedPairExchanges) {
  ShardedStack<1> S(3, 4, /*SlotCount=*/1, /*SpinBudget=*/8);
  ASSERT_EQ(S.push(0, 5), PushResult::Done);
  ASSERT_EQ(S.push(0, 6), PushResult::Done);
  PopResult<std::uint32_t> Pop0 = PopResult<std::uint32_t>::empty();
  std::optional<PushResult> Push1;
  PopResult<std::uint32_t> Pop2 = PopResult<std::uint32_t>::empty();
  std::uint32_t Grants0 = 0;
  std::uint32_t Grants1 = 0;
  InterleaveScheduler Scheduler(3);
  Scheduler.run(
      {[&] { Pop0 = S.pop(0); }, [&] { Push1 = S.push(1, 9); },
       [&] { Pop2 = S.pop(2); }},
      [&](std::size_t, const std::vector<std::uint32_t> &Parked)
          -> std::uint32_t {
        auto Has = [&](std::uint32_t Tid) {
          return std::find(Parked.begin(), Parked.end(), Tid) !=
                 Parked.end();
        };
        // T0 (pop) and T1 (push) park just before their TOP C&S...
        if (Grants0 < 5 && Has(0)) {
          ++Grants0;
          return 0;
        }
        if (Grants1 < 5 && Has(1)) {
          ++Grants1;
          return 1;
        }
        // ...T2's pop completes, invalidating both snapshots...
        if (Has(2))
          return 2;
        // ...T1's C&S fails; its rescue window parks 9 in the slot
        // (failed C&S + slot read + park C&S)...
        if (Grants1 < 8 && Has(1)) {
          ++Grants1;
          return 1;
        }
        // ...T0's C&S fails; its rescue window matches (failed C&S +
        // slot read + gate read + pair C&S) and T0 runs to completion...
        if (Has(0))
          return 0;
        // ...then T1 notices Done and completes its give.
        return Parked.front();
      });
  ASSERT_TRUE(Push1.has_value());
  EXPECT_EQ(*Push1, PushResult::Done) << "push eliminated via rescue";
  ASSERT_TRUE(Pop0.isValue());
  EXPECT_EQ(Pop0.value(), 9u) << "pop received the eliminated value";
  ASSERT_TRUE(Pop2.isValue());
  EXPECT_EQ(Pop2.value(), 6u);
  EXPECT_EQ(S.eliminationExchangesForTesting(), 2u);
  EXPECT_EQ(S.sizeForTesting(), 1u)
      << "the eliminated pair must not disturb the shard";
  if constexpr (obs::MetricsEnabled) {
    const obs::PathSnapshot Snap = S.pathSnapshot();
    EXPECT_EQ(Snap.path(obs::Path::Eliminated), 2u);
    EXPECT_TRUE(Snap.conserves());
  }
}

/// Wall-clock sanity for the same seam: chaos-injected preemption makes
/// shortcut aborts (hence rescue windows) frequent; paired push/pop
/// traffic through them must produce nonzero exchanges within a few
/// rounds — the balancer works under load, not only under direction.
TEST(ShardedBalancer, RescueWindowExchangesUnderChaosLoad) {
  for (std::uint32_t Round = 0; Round < 20; ++Round) {
    constexpr std::uint32_t Threads = 4;
    ShardedStack<2> S(Threads, 8, /*SlotCount=*/2, /*SpinBudget=*/64);
    SpinBarrier Barrier(Threads);
    std::vector<std::thread> Workers;
    for (std::uint32_t T = 0; T < Threads; ++T)
      Workers.emplace_back([&, T] {
        ChaosHook Chaos(/*Seed=*/0xE11Full + Round * 31 + T,
                        /*YieldPermille=*/350);
        SchedHookScope Scope(Chaos);
        Barrier.arriveAndWait();
        for (std::uint32_t I = 0; I < 400; ++I) {
          if ((T + I) % 2 == 0)
            (void)S.push(T, (I % 1000) + 1);
          else
            (void)S.pop(T);
        }
      });
    for (auto &W : Workers)
      W.join();
    EXPECT_TRUE(S.pathSnapshot().conserves());
    if (S.eliminationExchangesForTesting() > 0)
      return; // seam exercised under real threads
  }
  FAIL() << "no elimination exchange in 20 chaos rounds";
}

//===----------------------------------------------------------------------===
// Solo access-count regressions: acceleration must not tax the fast path
//===----------------------------------------------------------------------===

TEST(SoloAccessCounts, EliminatingStackStaysAtSix) {
  EliminatingContentionSensitiveStack<> S(2, 4);
  EXPECT_EQ(countAccesses([&] { (void)S.push(0, 7); }).total(), 6u);
  EXPECT_EQ(countAccesses([&] { (void)S.pop(0); }).total(), 6u);
  // Empty-pop short-circuit: 1 CONTENTION read + 3 weak accesses.
  EXPECT_EQ(countAccesses([&] { (void)S.pop(0); }).total(), 4u);
}

TEST(SoloAccessCounts, CombiningObjectsMatchFigureThree) {
  CombiningStack<> S(2, 4);
  EXPECT_EQ(countAccesses([&] { (void)S.push(0, 7); }).total(), 6u);
  EXPECT_EQ(countAccesses([&] { (void)S.pop(0); }).total(), 6u);
  CombiningQueue<> Q(2, 4);
  EXPECT_EQ(countAccesses([&] { (void)Q.enqueue(0, 7); }).total(), 7u);
  EXPECT_EQ(countAccesses([&] { (void)Q.dequeue(0); }).total(), 7u);
  CombiningCounter C(2);
  EXPECT_EQ(countAccesses([&] { (void)C.add(0, 1); }).total(), 3u);
}

TEST(SoloAccessCounts, ShardedStackStaysAtSix) {
  ShardedStack<2> S(2, 4);
  EXPECT_EQ(countAccesses([&] { (void)S.push(0, 7); }).total(), 6u);
  EXPECT_EQ(countAccesses([&] { (void)S.pop(0); }).total(), 6u);
}

//===----------------------------------------------------------------------===
// Constructor hard checks: bad geometry must throw, not assert (satellite
// audit — an NDEBUG build used to strip these checks entirely)
//===----------------------------------------------------------------------===

TEST(CtorChecks, ShardedFacadesRejectBadGeometry) {
  // Capacity not divisible across shards.
  EXPECT_THROW(ShardedStack<2>(2, 5), std::invalid_argument);
  // Zero capacity per shard.
  EXPECT_THROW(ShardedStack<4>(2, 0), std::invalid_argument);
  EXPECT_THROW(AdaptiveShardedStack<2>(2, 5), std::invalid_argument);
  EXPECT_THROW(AdaptiveShardedStack<4>(2, 0), std::invalid_argument);
  // Initial mask outside [1, MaxShards].
  EXPECT_THROW(AdaptiveShardedStack<2>(2, 4, /*InitialShards=*/0),
               std::invalid_argument);
  EXPECT_THROW(AdaptiveShardedStack<2>(2, 4, /*InitialShards=*/3),
               std::invalid_argument);
}

TEST(CtorChecks, CoreAndBaselineCtorsRejectBadGeometry) {
  // The same audit applied to the other validating constructors: the
  // skip list must reject before sizing its directory (a capacity at the
  // index-space limit would otherwise allocate gigabytes then corrupt
  // links), and the locked baseline must reject a zero-process guard.
  EXPECT_THROW(SkipListCore<>(0, 8), std::invalid_argument);
  EXPECT_THROW(SkipListCore<>(2, SkipListCore<>::NilIdx),
               std::invalid_argument);
  EXPECT_THROW(LockedMap<>(0, 8), std::invalid_argument);
}

//===----------------------------------------------------------------------===
// Slot-hint decorrelation: unrelated facades must not probe in lockstep
//===----------------------------------------------------------------------===

/// Each stream is observed from a FRESH thread, so the thread_local probe
/// counter restarts at zero for both instances — exactly the state in
/// which the pre-nonce implementation (one counter shared by every
/// facade) emitted identical hint streams for unrelated objects, making
/// their slot probes collide in lockstep.
TEST(SlotHints, StreamsDivergeAcrossInstances) {
  auto Collect = [](auto &S) {
    std::vector<std::uint64_t> Hints;
    std::thread Observer([&] {
      for (std::uint32_t I = 0; I < 8; ++I)
        Hints.push_back(S.slotHintForTesting(0));
    });
    Observer.join();
    return Hints;
  };
  ShardedStack<2> A(2, 4), B(2, 4);
  EXPECT_NE(Collect(A), Collect(B))
      << "two facades probed the same slot sequence";
  AdaptiveShardedStack<2> C(2, 4), D(2, 4);
  EXPECT_NE(Collect(C), Collect(D));
}

//===----------------------------------------------------------------------===
// ShardController: the control law against synthetic snapshot deltas
//===----------------------------------------------------------------------===

/// Builds a snapshot whose delta against zero retires \p Shortcut ops on
/// the shortcut path, \p Lock on the lock path and \p Eliminated on the
/// elimination path.
obs::PathSnapshot controlWindow(std::uint64_t Shortcut, std::uint64_t Lock,
                                std::uint64_t Eliminated) {
  obs::PathSnapshot S;
  S.Ops = Shortcut + Lock + Eliminated;
  S.Paths[static_cast<unsigned>(obs::Path::Shortcut)] = Shortcut;
  S.Paths[static_cast<unsigned>(obs::Path::Lock)] = Lock;
  S.Paths[static_cast<unsigned>(obs::Path::Eliminated)] = Eliminated;
  return S;
}

TEST(ShardControllerLaw, GrowsOnLockHeavyDeltaUntilFullMask) {
  ShardController Ctl;
  const ShardActions Act =
      Ctl.sample(controlWindow(900, 100, 0), /*Active=*/1, /*MaxShards=*/4,
                 /*SpinBudget=*/64);
  EXPECT_EQ(Act.Mask, ShardActions::MaskMove::Grow)
      << "a 10% lock-path window must widen the mask";
  // The same pressure at the full mask holds (nowhere to grow).
  obs::PathSnapshot Next = controlWindow(1800, 200, 0);
  EXPECT_EQ(Ctl.sample(Next, 4, 4, 64).Mask, ShardActions::MaskMove::Hold);
}

TEST(ShardControllerLaw, ShrinksOnShortcutDominantDeltaToFloorOne) {
  ShardController Ctl;
  EXPECT_EQ(Ctl.sample(controlWindow(990, 10, 0), 2, 4, 64).Mask,
            ShardActions::MaskMove::Shrink)
      << "a 99% shortcut window must retire a shard";
  EXPECT_EQ(Ctl.sample(controlWindow(1980, 20, 0), 1, 4, 64).Mask,
            ShardActions::MaskMove::Hold)
      << "the mask never shrinks below one shard";
}

TEST(ShardControllerLaw, SubThresholdDeltasAccumulate) {
  ShardController Ctl; // MinDeltaOps = 64.
  EXPECT_EQ(Ctl.sample(controlWindow(2, 30, 0), 1, 4, 64).Mask,
            ShardActions::MaskMove::Hold)
      << "a 32-op window is noise, not a signal";
  EXPECT_EQ(Ctl.lastSample().Ops, 0u)
      << "an unconsumed window must keep accumulating";
  EXPECT_EQ(Ctl.sample(controlWindow(6, 90, 0), 1, 4, 64).Mask,
            ShardActions::MaskMove::Grow)
      << "the accumulated 96-op window carries the decision";
  EXPECT_EQ(Ctl.lastSample().Ops, 96u);
}

TEST(ShardControllerLaw, GateTracksPairingRateWithinClampBounds) {
  ShardController Ctl;
  EXPECT_EQ(Ctl.sample(controlWindow(900, 0, 100), 1, 1, 64).Gate,
            ShardActions::GateMove::Widen)
      << "a 10% pairing window doubles the spin budget";
  EXPECT_EQ(Ctl.sample(controlWindow(1800, 0, 200), 1, 1, 4096).Gate,
            ShardActions::GateMove::Hold)
      << "widening clamps at MaxSpinBudget";
  EXPECT_EQ(Ctl.sample(controlWindow(2800, 0, 200), 1, 1, 64).Gate,
            ShardActions::GateMove::Narrow)
      << "a pairing-free window halves the budget";
  EXPECT_EQ(Ctl.sample(controlWindow(3800, 0, 200), 1, 1, 8).Gate,
            ShardActions::GateMove::Hold)
      << "narrowing clamps at MinSpinBudget";
}

//===----------------------------------------------------------------------===
// AdaptiveShardedStack: mask protocol, certificates, control loop
//===----------------------------------------------------------------------===

TEST(AdaptiveStack, GrowOnFullKeepsObservableCapacityTotal) {
  AdaptiveShardedStack<2> S(2, 4, /*InitialShards=*/1, /*SlotCount=*/1,
                            /*SpinBudget=*/4);
  EXPECT_EQ(S.capacity(), 4u);
  EXPECT_EQ(S.activeShards(), 1u);
  // Four pushes all land even though the initial mask holds two slots:
  // the third finds every active shard full and grows instead of
  // certifying.
  for (std::uint32_t V = 1; V <= 4; ++V)
    ASSERT_EQ(S.push(0, V), PushResult::Done) << "value " << V;
  EXPECT_EQ(S.activeShards(), 2u);
  EXPECT_GE(S.reconfigEpoch(), 1u);
  // Full only at the full mask, via the epoch-stable all-full witness.
  EXPECT_EQ(S.push(0, 5), PushResult::Full);
  if constexpr (obs::MetricsEnabled) {
    EXPECT_EQ(S.pathSnapshot().event(obs::Event::ShardGrow), 1u);
  }

  std::vector<std::uint32_t> Popped;
  for (std::uint32_t I = 0; I < 4; ++I) {
    const PopResult<std::uint32_t> R = S.pop(0);
    ASSERT_TRUE(R.isValue());
    Popped.push_back(R.value());
  }
  std::sort(Popped.begin(), Popped.end());
  EXPECT_EQ(Popped, (std::vector<std::uint32_t>{1, 2, 3, 4}));
  EXPECT_TRUE(S.pop(0).isEmpty());
  if constexpr (obs::MetricsEnabled) {
    EXPECT_TRUE(S.pathSnapshot().conserves());
  }
}

TEST(AdaptiveStack, ShrinkToOneRestoresSixAccessSoloBound) {
  AdaptiveShardedStack<4> S(2, 8, /*InitialShards=*/4, /*SlotCount=*/1,
                            /*SpinBudget=*/4);
  while (S.activeShards() > 1)
    ASSERT_TRUE(S.shrinkForTesting(0));
  EXPECT_FALSE(S.shrinkForTesting(0)) << "the mask floors at one shard";
  EXPECT_EQ(S.activeShards(), 1u);
  // At the one-shard mask a solo op is a plain Figure 3 shortcut: the
  // paper's exact bound, with zero adaptive tax (the mask word and tick
  // counter are configuration state, invisible to the oracle).
  EXPECT_EQ(countAccesses([&] { (void)S.push(0, 7); }).total(), 6u);
  EXPECT_EQ(countAccesses([&] { (void)S.pop(0); }).total(), 6u);
  if constexpr (obs::MetricsEnabled) {
    EXPECT_EQ(S.pathSnapshot().event(obs::Event::ShardShrink), 3u);
  }
}

TEST(AdaptiveStack, AutoTickShrinksUnderShortcutSoloLoad) {
  ShardControllerConfig Ctl;
  Ctl.TickOps = 8;
  Ctl.MinDeltaOps = 8;
  Ctl.ShrinkShortcutRatio = 0.9;
  AdaptiveShardedStack<2> S(2, 4, /*InitialShards=*/2, /*SlotCount=*/1,
                            /*SpinBudget=*/4, Ctl);
  // Solo alternating push/pop retires everything on the shortcut path;
  // the op-cadence tick must observe the shortcut-dominant delta and
  // retire the idle shard without any manual prod.
  for (std::uint32_t I = 0; I < 32; ++I) {
    ASSERT_EQ(S.push(0, I + 1), PushResult::Done);
    ASSERT_TRUE(S.pop(0).isValue());
  }
  EXPECT_EQ(S.activeShards(), 1u)
      << "the control loop failed to shrink a shortcut-dominant mask";
  EXPECT_GE(S.reconfigEpoch(), 1u);
  EXPECT_EQ(countAccesses([&] { (void)S.push(0, 7); }).total(), 6u)
      << "post-shrink solo cost must return to the paper's bound";
  if constexpr (obs::MetricsEnabled) {
    EXPECT_GE(S.pathSnapshot().event(obs::Event::ShardShrink), 1u);
  }
}

TEST(AdaptiveStack, TickGrowsUnderForcedLockHeavySnapshot) {
  if constexpr (!obs::MetricsEnabled)
    GTEST_SKIP() << "forged snapshots need the metric sinks";
  ShardControllerConfig Ctl;
  Ctl.TickOps = 0; // Manual ticks only.
  AdaptiveShardedStack<2> S(2, 4, /*InitialShards=*/1, /*SlotCount=*/1,
                            /*SpinBudget=*/4, Ctl);
  // Forge a lock-heavy window directly into the home shard's sink — the
  // controller consumes snapshot deltas, so a directed test can feed it
  // the exact signal a doorway pile-up would produce.
  obs::MetricSink &M = S.shard(0).skeleton().metrics();
  for (std::uint32_t I = 0; I < 64; ++I) {
    M.onOp(0);
    M.onPath(0, obs::Path::Lock);
  }
  S.tickForTesting(0);
  EXPECT_EQ(S.activeShards(), 2u)
      << "a 100% lock-path window must activate the second shard";
  EXPECT_EQ(S.pathSnapshot().event(obs::Event::ShardGrow), 1u);
}

TEST(AdaptiveStack, TickRetunesEliminationGateBudget) {
  if constexpr (!obs::MetricsEnabled)
    GTEST_SKIP() << "forged snapshots need the metric sinks";
  ShardControllerConfig Ctl;
  Ctl.TickOps = 0;
  Ctl.MinDeltaOps = 8;
  AdaptiveShardedStack<2> S(2, 4, /*InitialShards=*/1, /*SlotCount=*/1,
                            /*SpinBudget=*/64, Ctl);
  obs::MetricSink &M = S.shard(0).skeleton().metrics();
  // A pairing-rich window widens the gate...
  for (std::uint32_t I = 0; I < 16; ++I) {
    M.onOp(0);
    M.onPath(0, obs::Path::Eliminated);
  }
  S.tickForTesting(0);
  EXPECT_EQ(S.eliminationArray().spinBudget(), 128u);
  // ...and a pairing-free window narrows it back.
  for (std::uint32_t I = 0; I < 16; ++I) {
    M.onOp(0);
    M.onPath(0, obs::Path::Shortcut);
  }
  S.tickForTesting(0);
  EXPECT_EQ(S.eliminationArray().spinBudget(), 64u);
  const obs::PathSnapshot Snap = S.pathSnapshot();
  EXPECT_EQ(Snap.event(obs::Event::GateWiden), 1u);
  EXPECT_EQ(Snap.event(obs::Event::GateNarrow), 1u);
}

TEST(AdaptiveStack, StragglerInRetiredShardIsRecovered) {
  AdaptiveShardedStack<2> S(2, 4, /*InitialShards=*/2, /*SlotCount=*/1,
                            /*SpinBudget=*/4);
  for (std::uint32_t V = 1; V <= 4; ++V)
    ASSERT_EQ(S.push(0, V), PushResult::Done);
  ASSERT_EQ(S.shard(1).sizeForTesting(), 2u);
  ASSERT_TRUE(S.shrinkForTesting(0));
  EXPECT_EQ(S.activeShards(), 1u);
  EXPECT_EQ(S.shard(1).sizeForTesting(), 2u)
      << "retirement is lazy: it must move no elements";
  // The drain probes only shard 0, but the Empty-boundary certificate
  // spans the retired shard and routes its elements back out.
  std::vector<std::uint32_t> Popped;
  for (std::uint32_t I = 0; I < 4; ++I) {
    const PopResult<std::uint32_t> R = S.pop(0);
    ASSERT_TRUE(R.isValue()) << "straggler " << I << " not recovered";
    Popped.push_back(R.value());
  }
  std::sort(Popped.begin(), Popped.end());
  EXPECT_EQ(Popped, (std::vector<std::uint32_t>{1, 2, 3, 4}));
  EXPECT_TRUE(S.pop(0).isEmpty())
      << "Empty must certify across active and retired shards";
  EXPECT_EQ(S.sizeForTesting(), 0u);
  if constexpr (obs::MetricsEnabled) {
    EXPECT_TRUE(S.pathSnapshot().conserves());
  }
}

/// Victim-crash sweep across the post-retirement drain: shrink retires a
/// shard still holding elements, then thread 0 drains under a crash plan
/// swept over every shared-access index. Solo facade pops are shortcut
/// ops and straggler pops never take a lock, so the sweep is safe; the
/// invariant is that a crash anywhere in the drain strands nothing — a
/// survivor recovers every remaining element (the crash itself may
/// swallow at most the one value in transit) and the Empty certificate
/// stays truthful.
TEST(AdaptiveStack, CrashSweepDuringRetirementDrainStrandsNothing) {
  for (std::uint64_t K = 0; K < 40; ++K) {
    AdaptiveShardedStack<2> S(3, 4, /*InitialShards=*/2, /*SlotCount=*/1,
                              /*SpinBudget=*/4);
    for (std::uint32_t V = 1; V <= 4; ++V)
      ASSERT_EQ(S.push(0, V), PushResult::Done);
    ASSERT_TRUE(S.shrinkForTesting(0));
    ASSERT_EQ(S.shard(1).sizeForTesting(), 2u);

    std::vector<std::uint32_t> Got;
    bool Crashed = false;
    {
      FaultClock Clock;
      FaultInjector Injector(FaultPlan::crashAt(0, K), 0, Clock);
      SchedHookScope Scope(Injector);
      try {
        for (std::uint32_t I = 0; I < 4; ++I) {
          const PopResult<std::uint32_t> R = S.pop(0);
          if (!R.isValue())
            break;
          Got.push_back(R.value());
        }
      } catch (const ProcessCrash &) {
        Crashed = true;
      }
    }
    // The survivor drains whatever the corpse left behind.
    while (true) {
      const PopResult<std::uint32_t> R = S.pop(1);
      if (!R.isValue())
        break;
      Got.push_back(R.value());
    }
    EXPECT_TRUE(S.pop(1).isEmpty()) << "crash at access " << K;
    EXPECT_EQ(S.sizeForTesting(), 0u)
        << "crash at access " << K << " stranded an element";
    std::sort(Got.begin(), Got.end());
    ASSERT_TRUE(std::adjacent_find(Got.begin(), Got.end()) == Got.end())
        << "crash at access " << K << " duplicated an element";
    for (const std::uint32_t V : Got)
      ASSERT_TRUE(V >= 1 && V <= 4);
    // A crash may swallow the single value in transit, never more.
    ASSERT_GE(Got.size(), Crashed ? 3u : 4u) << "crash at access " << K;
    if (!Crashed) {
      ASSERT_EQ(Got.size(), 4u);
    }
  }
}

} // namespace
} // namespace csobj
